package cdn

import (
	"math/rand"
	"testing"
)

// randObj draws a small object universe so streams collide often.
func randObj(rng *rand.Rand) Object {
	return Object{
		Catalog: int32(rng.Intn(3)),
		Kind:    uint8(rng.Intn(2)),
		Track:   int32(rng.Intn(4)),
		Index:   int32(rng.Intn(50)),
	}
}

// sumEntries walks the LRU list and cross-checks it against the index.
func sumEntries(t *testing.T, c *cache) float64 {
	t.Helper()
	var used float64
	n := 0
	prev := nilEnt
	for e := c.head; e != nilEnt; e = c.ent[e].next {
		ent := &c.ent[e]
		if ent.prev != prev {
			t.Fatalf("LRU list corrupt: entry %d has prev %d, want %d", e, ent.prev, prev)
		}
		if got, ok := c.idx[ent.obj]; !ok || got != e {
			t.Fatalf("index out of sync for %v: got (%d,%v), want %d", ent.obj, got, ok, e)
		}
		used += ent.size
		n++
		prev = e
	}
	if c.tail != prev {
		t.Fatalf("tail = %d, want %d", c.tail, prev)
	}
	if n != len(c.idx) {
		t.Fatalf("list has %d entries, index has %d", n, len(c.idx))
	}
	return used
}

// TestCacheCapacityNeverExceeded: property test — under a random
// admit/lookup/expiry stream, used bytes never exceed the capacity and
// always equal the sum of resident entry sizes.
func TestCacheCapacityNeverExceeded(t *testing.T) {
	for _, capBytes := range []float64{100, 1000, 5000} {
		rng := rand.New(rand.NewSource(42))
		c := newCache(capBytes, 30)
		now := 0.0
		for i := 0; i < 5000; i++ {
			now += rng.Float64() * 2
			obj := randObj(rng)
			size := 1 + rng.Float64()*float64(rng.Intn(200))
			if rng.Intn(3) == 0 {
				c.lookup(now, obj)
			} else {
				c.admit(now, obj, size)
			}
			if c.used > capBytes+1e-9 {
				t.Fatalf("cap %.0f: used %.1f exceeds capacity after %d ops", capBytes, c.used, i+1)
			}
			if want := sumEntries(t, c); c.used-want > 1e-6 || want-c.used > 1e-6 {
				t.Fatalf("cap %.0f: used %.6f != entry sum %.6f", capBytes, c.used, want)
			}
		}
	}
}

// TestCacheOversizeRejected: an object larger than the whole capacity
// is never admitted (and evicts nothing).
func TestCacheOversizeRejected(t *testing.T) {
	c := newCache(100, 0)
	c.admit(0, Object{Index: 1}, 60)
	c.admit(0, Object{Index: 2}, 500)
	if c.lookup(1, Object{Index: 2}) {
		t.Fatal("oversize object was admitted")
	}
	if !c.lookup(1, Object{Index: 1}) {
		t.Fatal("oversize reject evicted a resident object")
	}
}

// TestCacheTTLBoundary: an entry admitted at t expires at exactly
// t+ttl — a lookup an instant before hits, a lookup at the boundary
// misses.
func TestCacheTTLBoundary(t *testing.T) {
	c := newCache(0, 10)
	obj := Object{Catalog: 1, Index: 7}
	c.admit(100, obj, 50)
	if !c.lookup(110-1e-9, obj) {
		t.Fatal("lookup just inside the TTL missed")
	}
	if c.lookup(110, obj) {
		t.Fatal("lookup at exactly now == expire hit; expiry must be strict")
	}
	if _, ok := c.idx[obj]; ok {
		t.Fatal("expired entry not removed on lookup")
	}
	// Re-admission refreshes the clock.
	c.admit(200, obj, 50)
	if !c.lookup(209.999, obj) {
		t.Fatal("re-admitted entry missing before its new expiry")
	}
}

// TestCacheNoTTL: ttl <= 0 means entries never expire.
func TestCacheNoTTL(t *testing.T) {
	c := newCache(0, 0)
	c.admit(0, Object{Index: 3}, 10)
	if !c.lookup(1e12, Object{Index: 3}) {
		t.Fatal("entry expired with ttl disabled")
	}
}

// TestCacheLRUDeterminism: identical request streams produce identical
// hit/miss sequences and identical final cache contents — eviction
// order is a pure function of the stream.
func TestCacheLRUDeterminism(t *testing.T) {
	run := func() (hits []bool, final []Object) {
		rng := rand.New(rand.NewSource(7))
		c := newCache(2000, 25)
		now := 0.0
		for i := 0; i < 3000; i++ {
			now += rng.Float64()
			obj := randObj(rng)
			size := 1 + rng.Float64()*100
			if c.lookup(now, obj) {
				hits = append(hits, true)
			} else {
				hits = append(hits, false)
				c.admit(now, obj, size)
			}
		}
		for e := c.head; e != nilEnt; e = c.ent[e].next {
			final = append(final, c.ent[e].obj)
		}
		return hits, final
	}
	h1, f1 := run()
	h2, f2 := run()
	if len(h1) != len(h2) || len(f1) != len(f2) {
		t.Fatalf("stream lengths diverged: %d/%d hits, %d/%d entries", len(h1), len(h2), len(f1), len(f2))
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("hit/miss diverged at request %d", i)
		}
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("LRU order diverged at position %d: %v vs %v", i, f1[i], f2[i])
		}
	}
}

// TestCacheLRUEvictionOrder: filling past capacity evicts the least
// recently used entry first, and a lookup refreshes recency.
func TestCacheLRUEvictionOrder(t *testing.T) {
	c := newCache(30, 0)
	a, b, d := Object{Index: 1}, Object{Index: 2}, Object{Index: 3}
	c.admit(0, a, 10)
	c.admit(1, b, 10)
	c.admit(2, d, 10)
	c.lookup(3, a) // refresh a: b becomes the LRU victim
	c.admit(4, Object{Index: 4}, 10)
	if c.lookup(5, b) {
		t.Fatal("LRU victim b still resident")
	}
	if !c.lookup(5, a) || !c.lookup(5, d) {
		t.Fatal("recency refresh evicted the wrong entry")
	}
}

// TestCacheSteadyStateZeroAlloc: once the entry slab and the index have
// reached their working-set size, the lookup/admit/evict cycle must not
// allocate — evicted entries recycle through the free list and map keys
// reuse existing buckets. This is the contract behind the hotpath
// annotations and the substrate/fleet_cdn_100k allocs/op gate.
func TestCacheSteadyStateZeroAlloc(t *testing.T) {
	c := newCache(400, 50)
	objs := make([]Object, 64)
	for i := range objs {
		objs[i] = Object{Track: int32(i % 4), Index: int32(i)}
	}
	now := 0.0
	step := func() {
		for _, obj := range objs {
			now += 0.25
			if !c.lookup(now, obj) {
				c.admit(now, obj, 25)
			}
		}
	}
	step() // warm: every key has been resident at least once
	if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
		t.Fatalf("steady-state cache cycle allocates %.1f per run", allocs)
	}
}

// TestCacheDrop: a dropped cache is empty and fully reusable.
func TestCacheDrop(t *testing.T) {
	c := newCache(1000, 0)
	for i := 0; i < 20; i++ {
		c.admit(0, Object{Index: int32(i)}, 10)
	}
	c.drop()
	if c.used != 0 || len(c.idx) != 0 || c.head != nilEnt || c.tail != nilEnt {
		t.Fatalf("drop left state: used %.0f, %d entries", c.used, len(c.idx))
	}
	for i := 0; i < 20; i++ {
		c.admit(1, Object{Index: int32(i)}, 10)
		if !c.lookup(1, Object{Index: int32(i)}) {
			t.Fatalf("post-drop admit %d not resident", i)
		}
	}
	if got := sumEntries(t, c); got != c.used {
		t.Fatalf("post-drop accounting: used %.0f, entries %.0f", c.used, got)
	}
}

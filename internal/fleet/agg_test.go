package fleet

import (
	"math"
	"math/rand"
	"testing"
)

// refMoments is the straightforward two-pass mean/std for cross-checking
// the streaming columns.
func refMoments(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

// TestSvcColsMatchesReference checks the columnar accumulator against a
// two-pass reference and against the scalar welford/hist pair it
// replaced, per (service, metric) cell.
func TestSvcColsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const nsvc = 3
	cols := newSvcCols(nsvc)
	ref := make([][]float64, nsvc*nMetrics)
	scalar := make([]*metricAgg, nsvc*nMetrics)
	for m := 0; m < nMetrics; m++ {
		for s := 0; s < nsvc; s++ {
			scalar[s*nMetrics+m] = &metricAgg{h: newHist(metricLo[m], metricHi[m], metricBins[m])}
		}
	}
	for i := 0; i < 5000; i++ {
		svc := rng.Intn(nsvc)
		metric := rng.Intn(nMetrics)
		// Spread over the range with deliberate out-of-range tails.
		v := (rng.Float64()*1.3 - 0.1) * metricHi[metric]
		cols.add(svc, metric, v)
		row := svc*nMetrics + metric
		ref[row] = append(ref[row], v)
		scalar[row].add(v)
	}
	for svc := 0; svc < nsvc; svc++ {
		for m := 0; m < nMetrics; m++ {
			row := svc*nMetrics + m
			if len(ref[row]) == 0 {
				continue
			}
			d := cols.dist(svc, m)
			mean, std := refMoments(ref[row])
			if d.Count != int64(len(ref[row])) {
				t.Fatalf("row %d count %d, want %d", row, d.Count, len(ref[row]))
			}
			if math.Abs(d.Mean-mean) > 1e-9*math.Max(1, math.Abs(mean)) {
				t.Fatalf("row %d mean %v, reference %v", row, d.Mean, mean)
			}
			if math.Abs(d.Std-std) > 1e-6*math.Max(1, std) {
				t.Fatalf("row %d std %v, reference %v", row, d.Std, std)
			}
			sd := scalar[row].dist()
			if d.Mean != sd.Mean || d.Std != sd.Std || d.P10 != sd.P10 || d.P50 != sd.P50 || d.P90 != sd.P90 || d.Under != sd.Under || d.Over != sd.Over {
				t.Fatalf("row %d columnar dist diverges from scalar accumulators:\ncols:   %+v\nscalar: %+v", row, d, sd)
			}
			for i := range d.Counts {
				if d.Counts[i] != sd.Counts[i] {
					t.Fatalf("row %d bin %d: %d vs %d", row, i, d.Counts[i], sd.Counts[i])
				}
			}
		}
	}
}

// TestSvcColsMergeOrderIsDeterministic: the same partition merged the
// same way twice must agree bit-for-bit, and merging must preserve
// exact counts while matching a flat fold's moments to float accuracy.
func TestSvcColsMergeOrderIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const nsvc = 2
	vals := make([]float64, 4000)
	for i := range vals {
		vals[i] = rng.Float64() * metricHi[mBitrate]
	}
	build := func() *svcCols {
		parts := make([]*svcCols, 4)
		for p := range parts {
			parts[p] = newSvcCols(nsvc)
			for i := p; i < len(vals); i += 4 {
				parts[p].add(i%nsvc, mBitrate, vals[i])
				parts[p].sessions[i%nsvc]++
				parts[p].started[i%nsvc]++
			}
		}
		out := newSvcCols(nsvc)
		for _, p := range parts {
			out.merge(p)
		}
		return out
	}
	a, b := build(), build()
	for svc := 0; svc < nsvc; svc++ {
		da, db := a.dist(svc, mBitrate), b.dist(svc, mBitrate)
		if da.Mean != db.Mean || da.Std != db.Std || da.Count != db.Count {
			t.Fatalf("svc %d: identical merge sequences disagree: %+v vs %+v", svc, da, db)
		}
		if a.sessions[svc] != b.sessions[svc] || a.started[svc] != b.started[svc] {
			t.Fatalf("svc %d: session counters diverge", svc)
		}
	}
	flat := newSvcCols(nsvc)
	for i, v := range vals {
		flat.add(i%nsvc, mBitrate, v)
	}
	for svc := 0; svc < nsvc; svc++ {
		da, df := a.dist(svc, mBitrate), flat.dist(svc, mBitrate)
		if da.Count != df.Count {
			t.Fatalf("svc %d: merged count %d != flat %d", svc, da.Count, df.Count)
		}
		if math.Abs(da.Mean-df.Mean) > 1e-9 || math.Abs(da.Std-df.Std) > 1e-9 {
			t.Fatalf("svc %d: merged moments (%v, %v) drifted from flat fold (%v, %v)", svc, da.Mean, da.Std, df.Mean, df.Std)
		}
		for i := range da.Counts {
			if da.Counts[i] != df.Counts[i] {
				t.Fatalf("svc %d bin %d: merged %d != flat %d", svc, i, da.Counts[i], df.Counts[i])
			}
		}
	}
}

// TestQuantileWalk pins the integer-walk quantile semantics on a known
// histogram: bins resolve to their upper edge, under to lo, over to hi.
func TestQuantileWalk(t *testing.T) {
	h := newHist(0, 10, 10)
	for i := 0; i < 9; i++ {
		h.add(float64(i) + 0.5) // one sample per bin 0..8
	}
	h.add(-1) // under
	h.add(99) // over
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("tails under=%d over=%d", h.Under, h.Over)
	}
	if q := quantileWalk(50, h.Lo, h.Hi, h.Counts, h.Under, h.Over); q != 5 {
		t.Fatalf("p50 = %v, want 5 (upper edge of the 6th of 11 ordered samples)", q)
	}
	if q := quantileWalk(1, h.Lo, h.Hi, h.Counts, h.Under, h.Over); q != 0 {
		t.Fatalf("p1 = %v, want lo for the under tail", q)
	}
	if q := quantileWalk(100, h.Lo, h.Hi, h.Counts, h.Under, h.Over); q != 10 {
		t.Fatalf("p100 = %v, want hi for the over tail", q)
	}
	if q := quantileWalk(50, 0, 1, []int64{0, 0}, 0, 0); q != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", q)
	}
}

// TestJain pins the fairness index endpoints.
func TestJain(t *testing.T) {
	if j := jain([]float64{5, 5, 5, 5}); math.Abs(j-1) > 1e-12 {
		t.Fatalf("equal shares: jain %v, want 1", j)
	}
	if j := jain([]float64{1, 0, 0, 0}); math.Abs(j-0.25) > 1e-12 {
		t.Fatalf("one taker of four: jain %v, want 0.25", j)
	}
	if j := jain([]float64{0, 0}); j != 1 {
		t.Fatalf("all-zero shares: jain %v, want 1", j)
	}
}

package probe

import (
	"math"
	"testing"

	"repro/internal/services"
)

// TestStartupBufferProbe checks the request-rejection probe recovers the
// configured startup buffer duration for representative services.
func TestStartupBufferProbe(t *testing.T) {
	cases := []struct {
		name     string
		wantSecs float64 // configured startup buffer
	}{
		{"H2", 8},  // 2 s segments → ~4 segments
		{"H3", 9},  // 9 s segments → 1 segment
		{"D1", 15}, // 5 s segments → 3 segments
	}
	for _, tc := range cases {
		svc := services.ByName(tc.name)
		segs, secs, err := StartupBuffer(svc, 24)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		t.Logf("%s: starts after %d segments (%.1fs of video)", tc.name, segs, secs)
		if secs < tc.wantSecs-0.01 || secs > tc.wantSecs+2*svc.Player.StartupBufferSec {
			t.Errorf("%s: probed %.1fs video, configured startup %.1fs", tc.name, secs, tc.wantSecs)
		}
	}
}

// TestThresholdsProbe checks the on/off analysis recovers pause/resume
// thresholds within the tolerance of 1 s sampling plus one segment.
func TestThresholdsProbe(t *testing.T) {
	for _, name := range []string{"H1", "H5", "D4", "S2"} {
		svc := services.ByName(name)
		pause, resume, err := Thresholds(svc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		t.Logf("%s: probed pause=%.1fs resume=%.1fs (configured %.0f/%.0f)",
			name, pause, resume, svc.Player.PauseThresholdSec, svc.Player.ResumeThresholdSec)
		tol := 2*svc.Media.SegmentDuration + 3
		if math.Abs(pause-svc.Player.PauseThresholdSec) > tol {
			t.Errorf("%s: pause probe %.1f vs configured %.0f (tol %.1f)", name, pause, svc.Player.PauseThresholdSec, tol)
		}
		if math.Abs(resume-svc.Player.ResumeThresholdSec) > tol {
			t.Errorf("%s: resume probe %.1f vs configured %.0f (tol %.1f)", name, resume, svc.Player.ResumeThresholdSec, tol)
		}
	}
}

// TestSteadyStateStability checks that D1 is the unstable outlier and a
// conservative service converges, as in §3.3.3.
func TestSteadyStateStability(t *testing.T) {
	d1, err := SteadyState(services.ByName("D1"), 500e3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("D1 @500k: distinct=%d switches=%d", d1.DistinctTracks, d1.Switches)
	if d1.Switches < 5 {
		t.Errorf("D1 should oscillate at constant bandwidth, saw %d switches", d1.Switches)
	}
	h1, err := SteadyState(services.ByName("H1"), 500e3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("H1 @500k: distinct=%d switches=%d converged=%.0f", h1.DistinctTracks, h1.Switches, h1.ConvergedDeclared)
	if h1.Switches > 1 {
		t.Errorf("H1 should converge at constant bandwidth, saw %d switches", h1.Switches)
	}
}

// TestTable1FullRows probes two structurally different services end to
// end and checks the complete row against the paper's Table 1.
func TestTable1FullRows(t *testing.T) {
	cases := []struct {
		name       string
		segDur     float64
		sepAudio   bool
		maxConns   int
		persistent bool
		startupSec float64
		startupMbs float64
		pause      float64
		resume     float64
		stable     bool
		aggressive bool
	}{
		{"H4", 9, false, 1, true, 9, 0.47, 155, 135, true, false},
		{"D3", 2, true, 3, true, 8, 0.40, 120, 90, true, true},
	}
	for _, c := range cases {
		row, err := Table1(services.ByName(c.name))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if row.SegmentDuration != c.segDur {
			t.Errorf("%s segdur %v", c.name, row.SegmentDuration)
		}
		if row.SeparateAudio != c.sepAudio {
			t.Errorf("%s sep audio %v", c.name, row.SeparateAudio)
		}
		if row.MaxConns != c.maxConns {
			t.Errorf("%s conns %d, want %d", c.name, row.MaxConns, c.maxConns)
		}
		if row.Persistent != c.persistent {
			t.Errorf("%s persistent %v", c.name, row.Persistent)
		}
		if math.Abs(row.StartupBufferSec-c.startupSec) > 2 {
			t.Errorf("%s startup %v, want %v", c.name, row.StartupBufferSec, c.startupSec)
		}
		if math.Abs(row.StartupBitrate-c.startupMbs*1e6) > 2e4 {
			t.Errorf("%s startup bitrate %v", c.name, row.StartupBitrate)
		}
		if math.Abs(row.PauseSec-c.pause) > 10 || math.Abs(row.ResumeSec-c.resume) > 10 {
			t.Errorf("%s thresholds %v/%v", c.name, row.PauseSec, row.ResumeSec)
		}
		if row.Stable != c.stable || row.Aggressive != c.aggressive {
			t.Errorf("%s stable=%v aggressive=%v", c.name, row.Stable, row.Aggressive)
		}
	}
}

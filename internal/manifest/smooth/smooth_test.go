package smooth

import (
	"math"
	"strings"
	"testing"

	"repro/internal/manifest"
	"repro/internal/media"
)

func buildPresentation(t *testing.T) *manifest.Presentation {
	t.Helper()
	v, err := media.Generate(media.Config{
		Name: "s", Duration: 30, SegmentDuration: 2,
		TargetBitrates: []float64{400e3, 800e3, 1.6e6},
		Encoding:       media.VBR, VBRSpread: 2, DeclaredPolicy: media.DeclareAverage,
		SeparateAudio: true, AudioSegmentDuration: 2,
		Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return manifest.Build(v, manifest.BuildOptions{Protocol: manifest.Smooth})
}

func TestRoundTrip(t *testing.T) {
	p := buildPresentation(t)
	body, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode("s", body)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Video) != len(p.Video) || len(q.Audio) != 1 {
		t.Fatalf("renditions %d/%d", len(q.Video), len(q.Audio))
	}
	if math.Abs(q.Duration-p.Duration) > 1e-3 {
		t.Errorf("duration %v vs %v", q.Duration, p.Duration)
	}
	for i, r := range q.Video {
		want := p.Video[i]
		if r.DeclaredBitrate != math.Trunc(want.DeclaredBitrate) {
			t.Errorf("track %d declared %v vs %v", i, r.DeclaredBitrate, want.DeclaredBitrate)
		}
		if len(r.Segments) != len(want.Segments) {
			t.Fatalf("track %d: %d segments vs %d", i, len(r.Segments), len(want.Segments))
		}
		for j := range r.Segments {
			if r.Segments[j].URL != want.Segments[j].URL {
				t.Fatalf("track %d seg %d URL %q vs %q", i, j, r.Segments[j].URL, want.Segments[j].URL)
			}
			if math.Abs(r.Segments[j].Start-want.Segments[j].Start) > 1e-6 {
				t.Fatalf("track %d seg %d start %v vs %v", i, j, r.Segments[j].Start, want.Segments[j].Start)
			}
		}
	}
}

func TestEncodeShape(t *testing.T) {
	p := buildPresentation(t)
	body, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	s := string(body)
	for _, want := range []string{"<SmoothStreamingMedia", "StreamIndex", "QualityLevel", "<c ", "Fragments(video={start time})"} {
		if !strings.Contains(s, want) {
			t.Errorf("manifest missing %q", want)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode("s", []byte("garbage")); err == nil {
		t.Error("accepted garbage")
	}
}

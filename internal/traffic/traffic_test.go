package traffic

import (
	"math"
	"testing"
)

func TestAnalyzeNoManifest(t *testing.T) {
	if _, err := Analyze("x", []Transaction{{URL: "/x/seg.ts", Bytes: 10}}); err == nil {
		t.Fatal("expected error without manifest")
	}
}

func TestSniff(t *testing.T) {
	cases := []struct {
		body []byte
		want docKind
	}{
		{[]byte("#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=1\nx\n"), docHLSMaster},
		{[]byte("#EXTM3U\n#EXTINF:2,\nseg.ts\n"), docHLSMedia},
		{[]byte("<?xml?><MPD></MPD>"), docMPD},
		{[]byte("<?xml?><SmoothStreamingMedia/>"), docSmooth},
		{append([]byte{0, 0, 0, 20}, []byte("sidx0000000000000000")...), docSidx},
		{[]byte("random payload"), docUnknown},
	}
	for i, c := range cases {
		if got := sniff(c.body); got != c.want {
			t.Errorf("case %d: sniff = %v, want %v", i, got, c.want)
		}
	}
}

func TestDownloadGaps(t *testing.T) {
	segs := []SegmentDownload{
		{Start: 0, End: 2},
		{Start: 2, End: 5},
		{Start: 20, End: 22}, // 15 s gap
		{Start: 22.5, End: 24},
		{Start: 60, End: 61}, // 36 s gap
	}
	gaps := DownloadGaps(segs, 2)
	if len(gaps) != 2 {
		t.Fatalf("%d gaps, want 2", len(gaps))
	}
	if math.Abs(gaps[0].Start-5) > 1e-9 || math.Abs(gaps[0].End-20) > 1e-9 {
		t.Fatalf("gap 0 = %+v", gaps[0])
	}
	if math.Abs(gaps[1].Start-24) > 1e-9 || math.Abs(gaps[1].End-60) > 1e-9 {
		t.Fatalf("gap 1 = %+v", gaps[1])
	}
	if got := DownloadGaps(nil, 2); got != nil {
		t.Fatal("gaps of empty input")
	}
}

func TestFirstPathElement(t *testing.T) {
	cases := map[string]string{
		"/a/b/c": "a",
		"/x":     "x",
		"y/z":    "y",
	}
	for in, want := range cases {
		if got := firstPathElement(in); got != want {
			t.Errorf("firstPathElement(%q) = %q", in, got)
		}
	}
}

// Package adaptation implements the client-side track-selection logic of a
// HAS player: bandwidth estimators and a family of selection algorithms
// covering the behaviours the paper observed in the wild (§3.3) and the
// best-practice fixes it evaluates (§4.2) — conservative and aggressive
// throughput rules, buffer-protected down-switching, ExoPlayer-style
// hysteresis, buffer-based selection, the oscillating greedy logic behind
// D1's instability, and actual-bitrate-aware selection for VBR content.
package adaptation

import "math"

// Context is the information available to an Algorithm for one decision.
// Which fields are populated reflects what the player exposes: ExoPlayer
// v2 exposes only track formats (declared bitrate), buffer occupancy and
// a bandwidth estimate, hiding per-segment sizes from the adaptation
// interface even when the manifest carries them (§4.2).
type Context struct {
	// Declared lists the ladder's declared bitrates ascending (bits/s).
	Declared []float64
	// Average lists advertised average actual bitrates per track (bits/s);
	// nil when the manifest does not expose them.
	Average []float64
	// SegmentSize returns the actual size in bytes of (track, index), or
	// nil when the player does not expose per-segment sizes.
	SegmentSize func(track, index int) float64
	// SegmentDuration is the nominal segment duration in seconds.
	SegmentDuration float64
	// SegmentCount is the total number of segments in the presentation.
	SegmentCount int
	// NextIndex is the index of the segment about to be fetched.
	NextIndex int
	// BufferSec is the current playback buffer occupancy in seconds.
	BufferSec float64
	// BufferTrend is the occupancy change since the previous decision.
	BufferTrend float64
	// EstimateBps is the current bandwidth estimate (0 = none yet).
	EstimateBps float64
	// LastTrack is the track of the previous video download (-1 at start).
	LastTrack int
	// StartupTrack is the configured first track.
	StartupTrack int
}

// trackRate returns the bitrate the algorithm should compare against the
// bandwidth estimate for the given track: the worst actual bitrate over
// the next horizon segments when sizes are exposed, else the advertised
// average, else the declared bitrate.
func (c *Context) trackRate(track, horizon int, useActual bool) float64 {
	if useActual && c.SegmentSize != nil {
		worst := 0.0
		for i := c.NextIndex; i < c.NextIndex+horizon && i < c.SegmentCount; i++ {
			r := c.SegmentSize(track, i) * 8 / c.SegmentDuration
			if r > worst {
				worst = r
			}
		}
		if worst > 0 {
			return worst
		}
	}
	if useActual && c.Average != nil {
		return c.Average[track]
	}
	return c.Declared[track]
}

// Algorithm selects the track for the next video segment.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Select returns the chosen track index.
	Select(ctx Context) int
}

// highestUnder returns the highest track whose comparison rate is at most
// budget, or 0 when even the lowest track exceeds it.
func highestUnder(ctx Context, budget float64, useActual bool, horizon int) int {
	best := 0
	for t := range ctx.Declared {
		if ctx.trackRate(t, horizon, useActual) <= budget {
			best = t
		}
	}
	return best
}

// Throughput is the conventional rate-based rule: pick the highest track
// whose declared bitrate fits within Factor × estimated bandwidth.
// A positive DecreaseBufferSec protects quality when the buffer is full:
// the player does not switch down while occupancy exceeds it (the
// behaviour of H2/D3/S1; the apps without it — H1, H4, H6, D1 — ramp down
// immediately on bandwidth dips, a QoE issue per Table 2).
type Throughput struct {
	// Factor scales the bandwidth estimate (0.75 is the conservative
	// cluster in Figure 9; D2 behaves like 0.5–0.6).
	Factor float64
	// UseActual compares against actual bitrates instead of declared
	// ones when the player exposes them (the §4.2 best practice, and
	// what makes D3/S1 "aggressive" in Figure 9).
	UseActual bool
	// Horizon is how many upcoming segments to consider for the actual
	// bitrate (default 1).
	Horizon int
	// DecreaseBufferSec, when positive, suppresses down-switches while
	// the buffer holds more than this many seconds.
	DecreaseBufferSec float64
	// MinBufferForUpSec, when positive, suppresses up-switches until the
	// buffer holds at least this many seconds (protects aggressive
	// players during startup).
	MinBufferForUpSec float64
}

// Name implements Algorithm.
func (a Throughput) Name() string {
	if a.UseActual {
		return "throughput-actual"
	}
	return "throughput"
}

// Select implements Algorithm.
func (a Throughput) Select(ctx Context) int {
	if ctx.EstimateBps <= 0 {
		return clampTrack(ctx, ctx.StartupTrack)
	}
	h := a.Horizon
	if h <= 0 {
		h = 1
	}
	t := highestUnder(ctx, a.Factor*ctx.EstimateBps, a.UseActual, h)
	if a.DecreaseBufferSec > 0 && ctx.LastTrack >= 0 && t < ctx.LastTrack && ctx.BufferSec > a.DecreaseBufferSec {
		return ctx.LastTrack
	}
	if a.MinBufferForUpSec > 0 && ctx.LastTrack >= 0 && t > ctx.LastTrack && ctx.BufferSec < a.MinBufferForUpSec {
		return ctx.LastTrack
	}
	return t
}

// Hysteresis models ExoPlayer's default AdaptiveTrackSelection: a
// throughput rule gated by buffer thresholds — switch up only with enough
// buffer, switch down only when the buffer is low. This is the player
// §4's best-practice experiments modify.
type Hysteresis struct {
	// Factor is the bandwidth fraction (ExoPlayer default 0.75).
	Factor float64
	// MinBufferForUp is the occupancy required before increasing quality
	// (ExoPlayer's minDurationForQualityIncreaseMs, default 10 s).
	MinBufferForUp float64
	// MaxBufferForDown suppresses decreases while occupancy exceeds it
	// (ExoPlayer's maxDurationForQualityDecreaseMs, default 25 s).
	MaxBufferForDown float64
	// UseActual switches the comparison to actual segment bitrates —
	// the modified algorithm evaluated in Figure 13.
	UseActual bool
	// Horizon is the lookahead for UseActual (default 1).
	Horizon int
}

// DefaultHysteresis returns ExoPlayer's default parameters.
func DefaultHysteresis() Hysteresis {
	return Hysteresis{Factor: 0.75, MinBufferForUp: 10, MaxBufferForDown: 25}
}

// Name implements Algorithm.
func (a Hysteresis) Name() string {
	if a.UseActual {
		return "exoplayer-actual"
	}
	return "exoplayer"
}

// Select implements Algorithm.
func (a Hysteresis) Select(ctx Context) int {
	if ctx.EstimateBps <= 0 || ctx.LastTrack < 0 {
		return clampTrack(ctx, ctx.StartupTrack)
	}
	h := a.Horizon
	if h <= 0 {
		h = 1
	}
	ideal := highestUnder(ctx, a.Factor*ctx.EstimateBps, a.UseActual, h)
	switch {
	case ideal > ctx.LastTrack && ctx.BufferSec < a.MinBufferForUp:
		return ctx.LastTrack
	case ideal < ctx.LastTrack && ctx.BufferSec > a.MaxBufferForDown:
		return ctx.LastTrack
	}
	return ideal
}

// BufferBased is a BBA-style rule (Huang et al., cited by the paper):
// occupancy below Reservoir maps to the lowest track, above Reservoir+
// Cushion to the highest, linear in between. Bandwidth estimates are
// ignored entirely.
type BufferBased struct {
	// Reservoir is the occupancy (seconds) reserved for safety.
	Reservoir float64
	// Cushion is the occupancy span mapped across the ladder.
	Cushion float64
}

// Name implements Algorithm.
func (BufferBased) Name() string { return "buffer-based" }

// Select implements Algorithm.
func (a BufferBased) Select(ctx Context) int {
	if ctx.LastTrack < 0 {
		return clampTrack(ctx, ctx.StartupTrack)
	}
	top := len(ctx.Declared) - 1
	if top == 0 {
		return 0
	}
	f := (ctx.BufferSec - a.Reservoir) / a.Cushion
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return int(math.Floor(f*float64(top) + 1e-9))
}

// OscillatingGreedy reproduces D1's unstable logic (Figure 8): it probes
// upward whenever the buffer grew during the last download and steps down
// when it shrank, trying to pull the *average actual* bitrate up to the
// link rate. Under constant bandwidth this never converges — the selected
// track keeps bouncing between rungs around the capacity.
type OscillatingGreedy struct {
	// Deadband is the occupancy change (seconds) treated as "no trend".
	Deadband float64
	// UpFactor bounds upward probes: a higher track is tried only when
	// its actual bitrate is within UpFactor × the bandwidth estimate,
	// keeping the oscillation around the link capacity as in Figure 8
	// (default 1.5).
	UpFactor float64
}

// Name implements Algorithm.
func (OscillatingGreedy) Name() string { return "oscillating-greedy" }

// Select implements Algorithm.
func (a OscillatingGreedy) Select(ctx Context) int {
	if ctx.LastTrack < 0 || ctx.EstimateBps <= 0 {
		return clampTrack(ctx, ctx.StartupTrack)
	}
	up := a.UpFactor
	if up <= 0 {
		up = 1.5
	}
	if ctx.BufferTrend < -a.Deadband {
		return clampTrack(ctx, ctx.LastTrack-1)
	}
	next := clampTrack(ctx, ctx.LastTrack+1)
	if ctx.trackRate(next, 1, true) > up*ctx.EstimateBps {
		return ctx.LastTrack
	}
	return next
}

// Fixed always selects the same track (used by probing experiments).
type Fixed struct {
	// Track is the rung to select.
	Track int
}

// Name implements Algorithm.
func (Fixed) Name() string { return "fixed" }

// Select implements Algorithm.
func (a Fixed) Select(ctx Context) int { return clampTrack(ctx, a.Track) }

func clampTrack(ctx Context, t int) int {
	if t < 0 {
		return 0
	}
	if t >= len(ctx.Declared) {
		return len(ctx.Declared) - 1
	}
	return t
}

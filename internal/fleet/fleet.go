// Package fleet runs population-scale multi-client streaming
// simulations: the "cellular tower serving a city block" view the
// single-session lab cannot express. A seeded workload model draws a
// population of clients — arrival time, service model (one of the 12
// paper services), per-client cellular access trace (one of the 14),
// and an early-abandon watch duration — and partitions them into cells.
// Each cell is one shared edge link (a simnet.Network) carrying every
// member's traffic: a client's chunk downloads are visible to its
// neighbours as cross traffic, arbitrated max-min fairly, and each
// client is additionally capped by its own cellular access link
// (simnet.AccessLink), so the achieved rate is min(access budget, fair
// edge share).
//
// Determinism contract (schema 2): every cell draws its own members
// from a private RNG stream derived from the fleet seed and the cell
// index (splitmix64), so a cell's bytes are a pure function of (config,
// cell index) — computable on any worker, in any order. Cells are
// grouped into fixed-size shards (cellsPerShard, a constant — NOT
// derived from the worker count) executed by the work-stealing
// scheduler layer (sched.RunStealing); each shard folds its cells in
// strict cell-index order, and completed shards fold into the fleet
// aggregate in strict shard-index order. The floating-point merge
// sequence is therefore a function of the cell count alone: the JSON
// report is byte-identical for any worker count and any steal schedule.
//
// Memory contract: per-session player.Results are never retained for
// the population. Non-focal full-fidelity sessions run lean — the
// player allocates no Result at all and streams an online Summary —
// and background-tier sessions are coarse analytic flows; both fold
// into fixed-size columnar aggregates (agg.go) the moment they finish.
// Full Results exist only for the seeded focus sample (FocusSessions
// members), so peak memory is O(workers · cell) + O(focus), independent
// of the fleet size.
//
// Fidelity contract: FidelityFull sets the per-client probability of
// running the full player state machine; the rest run the background
// tier (player.Background) — an analytically-stepped session model that
// still moves every byte through the same water-filling network, so
// coarse and full sessions shape each other. The mix is drawn per
// client inside the cell's RNG stream.
package fleet

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/cdn"
	"repro/internal/expcache"
	"repro/internal/netem"
	"repro/internal/origin"
	"repro/internal/player"
	"repro/internal/qoe"
	schedpkg "repro/internal/sched"
	"repro/internal/services"
	"repro/internal/simnet"
)

// sched is this package's reference to the process-wide scheduler.
// Tests swap it to control parallelism independently of the machine's
// core count.
var sched = schedpkg.Global

// cellsPerShard fixes the shard granularity. It is a constant on
// purpose: deriving it from the worker count would make the shard fold
// tree — and the report's floats — depend on parallelism. 16 cells
// (~384 sessions at the default cell size) is coarse enough to amortize
// steal traffic and fine enough to keep 8 workers busy on small fleets.
const cellsPerShard = 16

// Config parameterises a fleet run. Every field is plain data, so the
// whole config is fingerprintable (expcache) and a normalized config
// fully determines the report bytes. The worker count and steal
// schedule are deliberately NOT part of the config: they must never
// influence the output.
type Config struct {
	// Seed drives every random draw of the workload model.
	Seed int64
	// Sessions is the population size.
	Sessions int
	// ArrivalWindowSec spreads arrivals over [0, window): a Poisson
	// process conditioned on Sessions arrivals is exactly Sessions iid
	// uniforms, sorted. Default 600.
	ArrivalWindowSec float64
	// WatchSec is the full watch duration of a non-abandoning viewer.
	// Default 120.
	WatchSec float64
	// AbandonProb is the probability a viewer abandons early (the
	// paper's short-session reality); the abandoning viewer watches an
	// exponential duration with mean AbandonMeanSec, clamped to
	// [5, WatchSec]. Zero selects the default 0.35; negative disables
	// abandonment. Default mean 45.
	AbandonProb    float64
	AbandonMeanSec float64
	// ClientsPerCell sets how many clients share one edge link.
	// Default 24.
	ClientsPerCell int
	// EdgeMbps is the shared edge budget per cell in Mbit/s. Default 40.
	EdgeMbps float64
	// FidelityFull is the probability a client runs the full player
	// state machine; the rest run the coarse background tier. Zero
	// selects the default 1 (all full fidelity); negative means 0 (all
	// background).
	FidelityFull float64
	// FocusSessions is how many population members keep their full
	// player.Result and appear in the report's focus section. Focus
	// members are drawn from the seed; members that land on the
	// background tier are skipped. Default 0.
	FocusSessions int
	// Hotspot concentrates a fraction of the population on cell 0 — the
	// flash-crowd scenario (live-event premiere, cache-cold region)
	// where hundreds-to-thousands of flows share one edge link. The
	// remaining sessions are dealt round-robin across balanced cells as
	// usual. Zero keeps the fully balanced layout; clamped to [0, 0.95]
	// so the balanced remainder never vanishes entirely.
	Hotspot float64
	// Services is the session mix: each session draws uniformly from
	// this list (paper names, e.g. "H1"; duplicates weight the mix).
	// Empty means all 12 service models.
	Services []string
	// Cache enables the edge-cache tier (internal/cdn): per-cell edge
	// nodes behind a load balancer, per-shard metro caches, and a shared
	// backhaul link that cache misses traverse. nil means no cache tier
	// — every request is served at edge rate, exactly the pre-cache
	// behavior. A transparent config (unlimited warm caches, no TTL, no
	// cold cells, no failure) normalizes to nil so its report bytes are
	// identical to the cache-disabled tree.
	Cache *cdn.CacheConfig `json:"cache,omitempty"`
}

// Normalized fills every default; the normalized config is what the
// report echoes and what RunCached fingerprints.
func (c Config) Normalized() (Config, error) {
	if c.Sessions <= 0 {
		return c, fmt.Errorf("fleet: Sessions must be positive")
	}
	if c.ArrivalWindowSec <= 0 {
		c.ArrivalWindowSec = 600
	}
	if c.WatchSec <= 0 {
		c.WatchSec = 120
	}
	switch {
	case c.AbandonProb == 0:
		c.AbandonProb = 0.35
	case c.AbandonProb < 0:
		c.AbandonProb = 0
	case c.AbandonProb > 1:
		c.AbandonProb = 1
	}
	if c.AbandonMeanSec <= 0 {
		c.AbandonMeanSec = 45
	}
	if c.ClientsPerCell <= 0 {
		c.ClientsPerCell = 24
	}
	if c.EdgeMbps <= 0 {
		c.EdgeMbps = 40
	}
	switch {
	case c.FidelityFull == 0:
		c.FidelityFull = 1
	case c.FidelityFull < 0:
		c.FidelityFull = 0
	case c.FidelityFull > 1:
		c.FidelityFull = 1
	}
	if c.FocusSessions < 0 {
		c.FocusSessions = 0
	}
	switch {
	case c.Hotspot < 0:
		c.Hotspot = 0
	case c.Hotspot > 0.95:
		c.Hotspot = 0.95
	}
	if len(c.Services) == 0 {
		all := services.All()
		names := make([]string, len(all))
		for i, s := range all {
			names[i] = s.Name
		}
		c.Services = names
	} else {
		c.Services = append([]string(nil), c.Services...)
	}
	for _, name := range c.Services {
		if services.ByName(name) == nil {
			return c, fmt.Errorf("fleet: unknown service %q", name)
		}
	}
	if c.Cache != nil {
		cc := c.Cache.Normalized()
		if cc.Transparent() {
			// An unlimited, warm, never-expiring cache with no failure
			// serves every media request from the edge — byte-identical
			// to no cache tier at all, so normalize it away.
			c.Cache = nil
		} else {
			if _, err := cc.ColdSet(); err != nil {
				return c, fmt.Errorf("fleet: %v", err)
			}
			c.Cache = &cc
		}
	}
	return c, nil
}

// Client is one drawn population member.
type Client struct {
	// Arrival is the session start on the fleet clock (seconds).
	Arrival float64
	// Watch is the viewing duration (the session's duration budget).
	Watch float64
	// Service indexes Config.Services.
	Service int
	// Trace is the cellular access profile, 1..netem.CellularCount.
	Trace int
	// Full selects the simulation tier: the full player state machine
	// when true, the coarse background tier when false.
	Full bool
}

// splitmix64 is the SplitMix64 finalizer — the standard cheap way to
// derive decorrelated per-stream seeds from one master seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// cellSeed derives cell k's private RNG stream from the fleet seed.
// The double mix keeps adjacent cells (and adjacent seeds) statistically
// independent.
func cellSeed(seed int64, cell int) int64 {
	return int64(splitmix64(splitmix64(uint64(seed)) ^ uint64(cell)))
}

// hotSize is the population share pinned to cell 0 under a hotspot
// layout: round(Hotspot · Sessions), never exceeding the population.
func hotSize(cfg Config) int {
	h := int(math.Round(cfg.Hotspot * float64(cfg.Sessions)))
	if h > cfg.Sessions {
		h = cfg.Sessions
	}
	return h
}

// cellCount returns the number of cells for a normalized config. With a
// hotspot, cell 0 carries the concentrated share and the remainder
// spreads over balanced cells of at most ClientsPerCell members.
func cellCount(cfg Config) int {
	if cfg.Hotspot > 0 {
		rest := cfg.Sessions - hotSize(cfg)
		return 1 + (rest+cfg.ClientsPerCell-1)/cfg.ClientsPerCell
	}
	return (cfg.Sessions + cfg.ClientsPerCell - 1) / cfg.ClientsPerCell
}

// cellSize returns cell k's member count. Without a hotspot, sessions
// are dealt round-robin across cells (cell k holds the indices ≡ k mod
// nCells); with one, cell 0 holds the hot share and the rest deal
// round-robin across the remaining cells. Hotspot == 0 reproduces the
// legacy layout exactly, cell for cell.
func cellSize(cfg Config, k int) int {
	n := cellCount(cfg)
	if k < 0 || k >= n {
		return 0
	}
	if cfg.Hotspot > 0 {
		hot := hotSize(cfg)
		if k == 0 {
			return hot
		}
		rest, m := cfg.Sessions-hot, n-1
		return (rest - (k - 1) + m - 1) / m
	}
	return (cfg.Sessions - k + n - 1) / n
}

// CellClients draws cell k's members from the cell's private RNG
// stream. The draw order — arrivals first (sorted within the cell),
// then per client watch, service, trace and fidelity — is part of the
// determinism contract: a stolen cell computes identical members on any
// worker. The config must be normalized.
func CellClients(cfg Config, k int) []Client {
	n := cellSize(cfg, k)
	rng := rand.New(rand.NewSource(cellSeed(cfg.Seed, k)))
	arrivals := make([]float64, n)
	for i := range arrivals {
		arrivals[i] = rng.Float64() * cfg.ArrivalWindowSec
	}
	// Sorted within the cell: each cell sees a stationary arrival
	// process over the whole window.
	sort.Float64s(arrivals)
	clients := make([]Client, n)
	for i := range clients {
		watch := cfg.WatchSec
		if rng.Float64() < cfg.AbandonProb {
			watch = math.Min(cfg.WatchSec, math.Max(5, rng.ExpFloat64()*cfg.AbandonMeanSec))
		}
		clients[i] = Client{
			Arrival: arrivals[i],
			Watch:   watch,
			Service: rng.Intn(len(cfg.Services)),
			Trace:   1 + rng.Intn(netem.CellularCount),
			Full:    rng.Float64() < cfg.FidelityFull,
		}
	}
	return clients
}

// Workload materializes the full population: the concatenation of every
// cell's draw, in cell order. It exists for inspection and tests — Run
// never builds it, each shard draws only its own cells. The config must
// be normalized.
func Workload(cfg Config) []Client {
	clients := make([]Client, 0, cfg.Sessions)
	for k := 0; k < cellCount(cfg); k++ {
		clients = append(clients, CellClients(cfg, k)...)
	}
	return clients
}

// focusPlan draws the seeded focus sample: FocusSessions distinct
// (cell, member) coordinates from a dedicated RNG stream. Returns
// member indices per cell, sorted. Selection depends only on the
// normalized config.
func focusPlan(cfg Config) map[int][]int {
	if cfg.FocusSessions == 0 {
		return nil
	}
	nCells := cellCount(cfg)
	rng := rand.New(rand.NewSource(int64(splitmix64(uint64(cfg.Seed) ^ 0xf0c05a3b1e5d7c29))))
	want := cfg.FocusSessions
	if want > cfg.Sessions {
		want = cfg.Sessions
	}
	type coord struct{ cell, member int }
	chosen := make(map[coord]bool, want)
	// Rejection sampling with a generous attempt budget: for the
	// intended regime (focus ≪ sessions) collisions are rare; the cap
	// keeps pathological configs (focus ≈ sessions) from spinning.
	for attempts := 0; len(chosen) < want && attempts < 64*want+1024; attempts++ {
		cell := rng.Intn(nCells)
		chosen[coord{cell, rng.Intn(cellSize(cfg, cell))}] = true
	}
	plan := make(map[int][]int, len(chosen))
	for c := range chosen {
		plan[c.cell] = append(plan[c.cell], c.member)
	}
	for _, members := range plan {
		sort.Ints(members)
	}
	return plan
}

// RunOptions tunes execution without touching the output: the report
// bytes are identical for every combination.
type RunOptions struct {
	// Workers bounds the shard fan-out (0 or negative = scheduler
	// capacity); effective parallelism is additionally bounded by the
	// process-wide scheduler.
	Workers int
	// Steal forces a degenerate steal schedule (all shards seeded into
	// one deque, or stealing disabled) — determinism tests use it to
	// pin both extremes.
	Steal schedpkg.StealOptions
	// CellCache, when set, memoizes per-cell aggregates across runs by
	// cell fingerprint: a sweep that re-runs mostly-unchanged configs
	// (e.g. a hotspot sweep, where every balanced cell repeats) skips
	// the unchanged cells and merges their cached slabs. Purely an
	// execution optimization: bytes are identical with or without it.
	CellCache *CellCache
}

// Run executes the fleet and reduces it to a population Report.
func Run(ctx context.Context, cfg Config, workers int) (*Report, error) {
	return RunWithOptions(ctx, cfg, RunOptions{Workers: workers})
}

// RunWithOptions is Run with an explicit execution schedule.
func RunWithOptions(ctx context.Context, cfg Config, opts RunOptions) (*Report, error) {
	cfg, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	svcs := make([]*services.Service, len(cfg.Services))
	origins := make([]*origin.Origin, len(cfg.Services))
	bgTemplates := make([]player.BackgroundConfig, len(cfg.Services))
	for i, name := range cfg.Services {
		svcs[i] = services.ByName(name)
		if origins[i], err = expcache.Origin(svcs[i]); err != nil {
			return nil, fmt.Errorf("fleet: origin for %s: %w", name, err)
		}
		bgTemplates[i] = backgroundTemplate(origins[i])
	}
	traces := netem.CellularSet()

	// The cache tier's run-wide context: the cache config, the content
	// catalog (for warm starts) and the cold-cell set. All immutable
	// after this point, so shards share it freely.
	var cdnRT *cdnRuntime
	if cfg.Cache != nil {
		cold, err := cfg.Cache.ColdSet()
		if err != nil {
			return nil, fmt.Errorf("fleet: %v", err) // unreachable: validated by Normalized
		}
		cdnRT = &cdnRuntime{cfg: *cfg.Cache, catalog: cdnCatalog(origins), cold: cold}
	}

	nCells := cellCount(cfg)
	nShards := (nCells + cellsPerShard - 1) / cellsPerShard
	focus := focusPlan(cfg)

	workers := opts.Workers
	if workers <= 0 {
		workers = sched.Capacity()
	}

	// Shards execute under the work-stealing layer; an idle worker
	// steals half of the fullest victim's remaining shards. Completed
	// shard aggregates park in `pending` and fold into the fleet
	// aggregate as an in-order prefix: whenever the next shard in index
	// order is available it is merged and released, so out-of-order
	// completions are buffered only across the reorder window — peak
	// memory stays O(workers) shard aggregates in the common case — and
	// the merge sequence is the same for every schedule.
	fleet := newFleetAgg(len(svcs))
	var (
		mu       sync.Mutex
		pending  = make([]*fleetAgg, nShards)
		foldNext int
		focusOut []FocusSession
	)
	_, err = sched.RunStealing(ctx, nShards, workers, opts.Steal, func(sh int) error {
		shardAgg := newFleetAgg(len(svcs))
		var shardFocus []FocusSession
		lo, hi := sh*cellsPerShard, (sh+1)*cellsPerShard
		if hi > nCells {
			hi = nCells
		}
		// The metro cache is shard state: created here, warmed once,
		// and touched only by this shard's cells, which run strictly
		// sequentially below — so its evolution is a pure function of
		// the shard's cell order regardless of worker or schedule.
		var metro *cdn.Metro
		if cdnRT != nil {
			metro = cdn.NewMetro(cdnRT.cfg)
			cdnRT.catalog.WarmMetro(metro)
		}
		for c := lo; c < hi; c++ {
			// A canceled context stops between cells, not just between
			// shards: a single shard of large hotspot cells can run for
			// a long time, and the steal layer only observes ctx at
			// shard boundaries.
			if err := ctx.Err(); err != nil {
				return err
			}
			if cache := opts.CellCache; cache != nil {
				if len(focus[c]) > 0 || metro != nil {
					// Focus cells produce per-member FocusSessions the
					// cache does not capture — always run them cold.
					// Metro-coupled cells both read and evolve the
					// shard-shared metro cache, so their aggregates are
					// not a pure function of (config, cell index):
					// serving one from the memo would leave the metro
					// un-evolved for the shard's later cells.
					cache.skipped.Add(1)
				} else if key, kerr := cache.key(cfg, c); kerr == nil {
					c := c
					ca, err := cache.memo.Get(key, func() (*cellAgg, error) {
						ca, _, err := runCell(cfg, svcs, origins, bgTemplates, traces, cdnRT, nil, c, nil)
						return ca, err
					})
					if err != nil {
						return err
					}
					// merge reads the cached aggregate without mutating
					// it, so one cached cellAgg can fold into any number
					// of later runs.
					shardAgg.merge(ca)
					continue
				}
			}
			ca, fs, err := runCell(cfg, svcs, origins, bgTemplates, traces, cdnRT, metro, c, focus[c])
			if err != nil {
				return err
			}
			shardAgg.merge(ca)
			shardFocus = append(shardFocus, fs...)
		}
		mu.Lock()
		pending[sh] = shardAgg
		for foldNext < nShards && pending[foldNext] != nil {
			fleet.mergeFleet(pending[foldNext])
			pending[foldNext] = nil
			foldNext++
		}
		focusOut = append(focusOut, shardFocus...)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Focus entries arrive in completion order; sort by coordinates so
	// the report bytes don't depend on the schedule.
	sort.Slice(focusOut, func(i, j int) bool {
		if focusOut[i].Cell != focusOut[j].Cell {
			return focusOut[i].Cell < focusOut[j].Cell
		}
		return focusOut[i].Member < focusOut[j].Member
	})
	return fleet.report(cfg, nCells, focusOut), nil
}

// bgSafetyFactor calibrates the background tier's rung selection to the
// full player population. The coarse tier's EWMA sees only its own
// transfer rates (its fair share), while the full player's estimator
// reads network-wide delivery and therefore over-buys under contention;
// a factor above 1 compensates for that bias. 1.6 was fitted against
// full-fidelity runs across contention levels (TestFidelityDifferential
// pins the residual deltas).
const bgSafetyFactor = 1.6

// backgroundTemplate derives the coarse tier's view of a service — the
// declared ladder and segment grid — from its origin presentation.
func backgroundTemplate(org *origin.Origin) player.BackgroundConfig {
	pres := org.Pres
	declared := make([]float64, len(pres.Video))
	for i, r := range pres.Video {
		declared[i] = r.DeclaredBitrate
	}
	return player.BackgroundConfig{
		Declared:        declared,
		SegmentDuration: pres.Video[0].SegmentDuration,
		MediaDuration:   pres.Duration,
		SafetyFactor:    bgSafetyFactor,
	}
}

// memo caches fleet reports by config fingerprint for the lifetime of
// the process (a vodfleet sweep or a test re-running the same config
// pays the simulation once).
var memo expcache.Memo[expcache.Key, *Report]

// RunCached is the memoized counterpart of Run: reports are
// content-addressed by the fingerprint of the normalized config (the
// worker count is not part of the key — it cannot change the bytes).
// Configs that somehow fail to fingerprint fall back to an uncached Run.
func RunCached(ctx context.Context, cfg Config, workers int) (*Report, error) {
	ncfg, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	key, err := expcache.Fingerprint("fleet", expcache.EngineVersion, ncfg)
	if err != nil {
		return Run(ctx, cfg, workers) // unreachable for plain-data configs
	}
	return memo.Get(key, func() (*Report, error) {
		return Run(ctx, ncfg, workers)
	})
}

// sessMeta ties a finished session back to its population coordinates.
type sessMeta struct {
	client Client
	member int
}

// cdnRuntime is the run-wide immutable context of the cache tier.
type cdnRuntime struct {
	cfg     cdn.CacheConfig
	catalog *cdn.Catalog
	cold    map[int]bool
}

// cdnCatalog builds the cache tier's view of the content library — the
// per-service segment-size grids — from the origin presentations. The
// full player requests actual segment sizes, the background tier
// requests declared-rate sizes; the catalog records the actuals, which
// is what warm caches hold (cache keys only need the coordinates to
// agree, and they do).
func cdnCatalog(origins []*origin.Origin) *cdn.Catalog {
	titles := make([]cdn.Title, len(origins))
	for i, org := range origins {
		t := &titles[i]
		t.Video = make([][]float64, len(org.Pres.Video))
		for j, r := range org.Pres.Video {
			sizes := make([]float64, len(r.Segments))
			for k, s := range r.Segments {
				sizes[k] = float64(s.Size)
			}
			t.Video[j] = sizes
		}
		t.Audio = make([][]float64, len(org.Pres.Audio))
		for j, r := range org.Pres.Audio {
			sizes := make([]float64, len(r.Segments))
			for k, s := range r.Segments {
				sizes[k] = float64(s.Size)
			}
			t.Audio[j] = sizes
		}
	}
	return cdn.NewCatalog(titles)
}

// runCell simulates one cell: every member session over one shared edge
// link, each behind its own cellular access link, folded into the
// cell's streaming aggregates as it finishes. Full-fidelity members run
// the player state machine — lean (no Result) unless selected as focus
// members — and background members run the coarse analytic tier over
// the same network. The cell is strictly single-threaded and
// deterministic given (cfg, cellIdx).
func runCell(cfg Config, svcs []*services.Service, origins []*origin.Origin, bgTemplates []player.BackgroundConfig, traces []*netem.Profile, cdnRT *cdnRuntime, metro *cdn.Metro, cellIdx int, focusMembers []int) (*cellAgg, []FocusSession, error) {
	members := CellClients(cfg, cellIdx)
	horizon := 0.0
	for _, m := range members {
		if e := m.Arrival + m.Watch; e > horizon {
			horizon = e
		}
	}
	edge := netem.Constant("edge", cfg.EdgeMbps*1e6, horizon+1)
	scfg := simnet.DefaultConfig()
	scfg.Engine = simnet.EngineCell
	net := simnet.New(scfg, edge)

	// The cell's edge-cache tier: its nodes, balancer and backhaul link
	// are cell-private; the metro cache (possibly nil) is shard state.
	var cdnCell *cdn.Cell
	if cdnRT != nil {
		backhaul := net.NewAccessLink(netem.Constant("backhaul", cdnRT.cfg.BackhaulMbps*1e6, horizon+1))
		cdnCell = cdn.NewCell(cdnRT.cfg, cellIdx, metro, backhaul)
		if !cdnRT.cold[cellIdx] {
			cdnRT.catalog.Warm(cdnCell)
		}
	}

	agg := newCellAgg(len(svcs))
	var focusOut []FocusSession
	meta := make(map[*player.Session]sessMeta, len(members))
	g := player.NewGroup()
	g.SetObserver(func(s *player.Session, r *player.Result) {
		sm := meta[s]
		agg.observe(sm.client.Service, qoe.FromSummary(s.Summary()))
		if r != nil { // focus member: keep the full record
			focusOut = append(focusOut, buildFocus(cfg, cellIdx, sm, r))
		}
	})
	// The whole background tier of the cell runs as one vectorized
	// cohort: same per-member arithmetic (differentially tested
	// bit-exact against player.Background), one group-heap entry and
	// contiguous slabs instead of a heap entry and a heap allocation
	// per member.
	cohort := player.NewCohort(net)
	var coSvc []int
	isFocus := make(map[int]bool, len(focusMembers))
	for _, m := range focusMembers {
		isFocus[m] = true
	}
	for i, m := range members {
		if !m.Full {
			bcfg := bgTemplates[m.Service]
			bcfg.SessionDuration = m.Watch
			j := cohort.Add(bcfg)
			cohort.SetStartAt(j, m.Arrival)
			cohort.SetAccessLink(j, net.NewAccessLink(traces[m.Trace-1]))
			if cdnCell != nil {
				cohort.SetResolver(j, cdnCell.NewClient(i), int32(m.Service))
			}
			coSvc = append(coSvc, m.Service)
			agg.background++
			continue
		}
		svc := svcs[m.Service]
		pcfg := services.Resolve(svc.Player, m.Watch, nil)
		sess, err := player.NewSession(pcfg, origins[m.Service], net)
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: %s session: %w", svc.Name, err)
		}
		if !isFocus[i] {
			sess.SetLean()
		}
		sess.SetStartAt(m.Arrival)
		sess.SetAccessLink(net.NewAccessLink(traces[m.Trace-1]))
		if cdnCell != nil {
			sess.SetResolver(cdnCell.NewClient(i), int32(m.Service))
		}
		if err := g.Add(sess); err != nil {
			return nil, nil, err
		}
		meta[sess] = sessMeta{client: m, member: i}
		agg.full++
	}
	if cohort.Len() > 0 {
		cohort.SetObserver(func(j int, s *player.Summary) {
			agg.observe(coSvc[j], qoe.FromSummary(s))
		})
		if err := g.AddCohort(cohort); err != nil {
			return nil, nil, err
		}
	}
	g.Run()
	agg.finishCell(net.Delivered(), edge.Integral(0, net.Now()))
	if cdnCell != nil {
		agg.cdnOn = true
		agg.cdnStats = cdnCell.Stats
	}
	return agg, focusOut, nil
}

// buildFocus condenses a focus member's full Result into the report's
// focus record: per-session QoE plus the displayed-track and buffer
// timelines.
func buildFocus(cfg Config, cell int, sm sessMeta, r *player.Result) FocusSession {
	rep := qoe.FromResult(r)
	fs := FocusSession{
		Cell:            cell,
		Member:          sm.member,
		Service:         cfg.Services[sm.client.Service],
		Trace:           sm.client.Trace,
		ArrivalSec:      sm.client.Arrival,
		WatchSec:        sm.client.Watch,
		StartupDelaySec: rep.StartupDelay,
		StallCount:      rep.StallCount,
		StallSec:        rep.StallSec,
		PlayedSec:       rep.PlayedSec,
		AvgBitrateMbps:  rep.AvgBitrate / 1e6,
		Switches:        rep.Switches,
		TotalBytes:      rep.DataUsageBytes,
		WastedBytes:     rep.WastedBytes,
		Displayed:       append([]int(nil), r.Displayed...),
	}
	fs.Buffer = make([]FocusSample, len(r.Samples))
	for i, s := range r.Samples {
		fs.Buffer[i] = FocusSample{T: s.T, Playhead: s.Playhead, BufferSec: s.VideoSec}
	}
	return fs
}

// Package vod's benchmark harness: one benchmark per paper artifact
// (Table 1, Table 2, Figures 3–15, the §4.1.1 what-if analysis) plus
// micro-benchmarks of the substrates. Each artifact benchmark regenerates
// the full experiment per iteration, so `go test -bench .` both times the
// reproduction and re-validates that every experiment still runs.
package vod

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/expcache"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/live"
	"repro/internal/manifest"
	"repro/internal/manifest/dash"
	"repro/internal/manifest/hls"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/origin"
	"repro/internal/player"
	"repro/internal/qoe"
	"repro/internal/services"
	"repro/internal/simnet"
	"repro/internal/traffic"
	"repro/internal/uimon"
)

// benchExperiment runs one registered experiment per iteration. The
// process-wide session cache stays warm across iterations (and across
// benchmarks), so after the first iteration this times the analysis and
// rendering of the artifact, not the session simulation — the number a
// `vodreport` rerun actually pays. substrate/report_cold in vodbench
// tracks the uncached cost.
func benchExperiment(b *testing.B, id string) {
	e := experiments.ByID(id)
	if e == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3(b *testing.B)     { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)     { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)     { benchExperiment(b, "fig5") }
func BenchmarkTable1(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkFig6(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)     { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)     { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)    { benchExperiment(b, "fig10") }
func BenchmarkSRWhatIf(b *testing.B) { benchExperiment(b, "sr_whatif") }
func BenchmarkFig11(b *testing.B)    { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)    { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)    { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)    { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)    { benchExperiment(b, "fig15") }

func BenchmarkAblEnergy(b *testing.B)     { benchExperiment(b, "abl_energy") }
func BenchmarkAblSegDur(b *testing.B)     { benchExperiment(b, "abl_segdur") }
func BenchmarkAblSplit(b *testing.B)      { benchExperiment(b, "abl_split") }
func BenchmarkAblSRCap(b *testing.B)      { benchExperiment(b, "abl_srcap") }
func BenchmarkAblAlgorithms(b *testing.B) { benchExperiment(b, "abl_algorithms") }
func BenchmarkAblRecovery(b *testing.B)   { benchExperiment(b, "abl_recovery") }
func BenchmarkAblAbandon(b *testing.B)    { benchExperiment(b, "abl_abandon") }
func BenchmarkAblFairness(b *testing.B)   { benchExperiment(b, "abl_fairness") }

// benchReportAll regenerates the entire report (every registered
// experiment) per iteration on the parallel engine with the given worker
// count. The pair below tracks the serial-vs-parallel speedup as a
// number; the first iteration also warms the shared origin caches, so
// per-iteration numbers measure session simulation, not content
// encoding.
func benchReportAll(b *testing.B, workers int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAll(context.Background(), experiments.Options{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReportAll(b *testing.B) { benchReportAll(b, 1) }

func BenchmarkReportAllParallel(b *testing.B) {
	benchReportAll(b, runtime.GOMAXPROCS(0))
}

// BenchmarkReportAllCold resets the session cache every iteration: the
// full price of regenerating every artifact from scratch.
func BenchmarkReportAllCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		expcache.Default.Reset()
		if _, err := experiments.RunAll(context.Background(), experiments.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReportAllWarm pre-warms the session cache once and then times
// fully cached report regenerations (analysis + rendering only).
func BenchmarkReportAllWarm(b *testing.B) {
	expcache.Default.Reset()
	if _, err := experiments.RunAll(context.Background(), experiments.Options{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAll(context.Background(), experiments.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveSession measures a 4-minute live session (playlist
// polling + edge tracking) on the simulator.
func BenchmarkLiveSession(b *testing.B) {
	v, err := media.Generate(media.Config{
		Name: "live", Duration: 1200, SegmentDuration: 4,
		TargetBitrates: []float64{250e3, 500e3, 1e6},
		Seed:           17,
	})
	if err != nil {
		b.Fatal(err)
	}
	o := live.NewOrigin(v)
	p := netem.Constant("c", 8e6, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := simnet.New(simnet.DefaultConfig(), p)
		if _, err := live.Play(live.Config{JoinAt: 60, SessionDuration: 240}, o, net); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- substrate micro-benchmarks ----

// BenchmarkSession10Min measures one full 10-minute virtual-time session
// (the unit of every experiment above).
func BenchmarkSession10Min(b *testing.B) {
	svc := services.ByName("H1")
	org, err := svc.Origin()
	if err != nil {
		b.Fatal(err)
	}
	p := netem.Cellular(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := services.RunWithOrigin(svc.Player, org, p, 600, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimnetTransfers measures raw fluid-network throughput: 1000
// back-to-back transfers on one connection.
func BenchmarkSimnetTransfers(b *testing.B) {
	p := netem.Constant("c", 10e6, 1e6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := simnet.New(simnet.DefaultConfig(), p)
		c := n.Dial()
		for j := 0; j < 1000; j++ {
			c.Start(500e3, nil)
			n.Step(1e6)
		}
	}
}

// BenchmarkFleet1k measures a 1000-session population run end to end:
// workload draw, per-cell shared-edge simulation and the streaming QoE
// aggregation (internal/fleet). Serial (workers=1) so the number tracks
// simulation cost, not the machine's core count.
func BenchmarkFleet1k(b *testing.B) {
	cfg := fleet.Config{Seed: 1, Sessions: 1000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fleet.Run(context.Background(), cfg, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMediaGenerate measures content synthesis (a 20-minute,
// 6-track VBR video).
func BenchmarkMediaGenerate(b *testing.B) {
	cfg := media.Config{
		Name: "b", Duration: 1200, SegmentDuration: 4,
		TargetBitrates: []float64{200e3, 400e3, 800e3, 1.6e6, 3.2e6, 6.4e6},
		Encoding:       media.VBR, VBRSpread: 2, DeclaredPolicy: media.DeclarePeak,
		Seed: 1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := media.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHLSEncodeParse round-trips a 300-segment media playlist.
func BenchmarkHLSEncodeParse(b *testing.B) {
	v, err := media.Generate(media.Config{
		Name: "b", Duration: 1200, SegmentDuration: 4,
		TargetBitrates: []float64{500e3}, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	p := manifest.Build(v, manifest.BuildOptions{Protocol: manifest.HLS})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text := hls.EncodeMedia(p.Video[0])
		if _, err := hls.ParseMedia(text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMPDEncodeDecode round-trips a sidx-addressed MPD.
func BenchmarkMPDEncodeDecode(b *testing.B) {
	v, err := media.Generate(media.Config{
		Name: "b", Duration: 1200, SegmentDuration: 4,
		TargetBitrates: []float64{250e3, 500e3, 1e6},
		SeparateAudio:  true, AudioSegmentDuration: 2, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	p := manifest.Build(v, manifest.BuildOptions{Protocol: manifest.DASH, Addressing: manifest.RangesInManifest})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body, err := dash.Encode(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dash.Decode("b", body, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrafficAnalyze measures the analyzer over a full session log.
func BenchmarkTrafficAnalyze(b *testing.B) {
	svc := services.ByName("D2")
	res, err := svc.Run(netem.Cellular(6), 600, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := traffic.Analyze("D2", res.Transactions); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQoEInference measures the full §2 pipeline: traffic analysis +
// UI samples → inferred QoE and buffer timeline.
func BenchmarkQoEInference(b *testing.B) {
	svc := services.ByName("H5")
	res, err := svc.Run(netem.Cellular(4), 600, nil)
	if err != nil {
		b.Fatal(err)
	}
	samples := uimon.FromResult(res)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := traffic.Analyze("H5", res.Transactions)
		if err != nil {
			b.Fatal(err)
		}
		qoe.Infer(tr, samples)
	}
}

// BenchmarkOriginBuild measures manifest + sidx encoding for a service.
func BenchmarkOriginBuild(b *testing.B) {
	svc := services.ByName("D3")
	v, err := svc.Video()
	if err != nil {
		b.Fatal(err)
	}
	pres := manifest.Build(v, svc.Build)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := origin.New(pres); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlayerAllServices streams every service model for one minute
// of virtual time — the cross-sectional sweep as a unit of work.
func BenchmarkPlayerAllServices(b *testing.B) {
	type pair struct {
		cfg player.Config
		org *origin.Origin
	}
	var pairs []pair
	for _, svc := range services.All() {
		org, err := svc.Origin()
		if err != nil {
			b.Fatal(err)
		}
		pairs = append(pairs, pair{svc.Player, org})
	}
	p := netem.Cellular(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pr := range pairs {
			if _, err := services.RunWithOrigin(pr.cfg, pr.org, p, 60, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

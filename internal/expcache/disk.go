package expcache

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/player"
)

// The on-disk tier stores one gob-encoded session result per key under
// <dir>/<k[:2]>/<key>.gob. Every file carries a self-describing header;
// any mismatch (format bump, engine bump, different Go toolchain or
// architecture) makes the file a clean miss, never a wrong answer.
// Writes go through a temp file + rename so concurrent processes
// sharing a cache directory only ever observe complete entries.
const (
	diskMagic  = "vodrepro-session"
	diskFormat = 1
)

// diskFile is the versioned wrapper around one cached result.
type diskFile struct {
	Magic  string
	Format int
	// Engine invalidates every entry when simulation semantics change
	// (see EngineVersion).
	Engine string
	// GoVersion and GOARCH pin the toolchain: floating-point results are
	// only guaranteed bit-identical for the same compiler on the same
	// architecture (e.g. FMA contraction differs across arches).
	GoVersion string
	GOARCH    string
	Result    *player.Result
}

type diskTier struct {
	dir string
}

func (d *diskTier) path(key Key) string {
	name := key.String()
	return filepath.Join(d.dir, name[:2], name+".gob")
}

// load reads the entry for key. A missing file or a stale-but-valid
// header is a clean miss (nil result, nil error); a file that cannot be
// decoded is returned as an error so the caller can count it. n is the
// number of bytes read.
func (d *diskTier) load(key Key) (res *player.Result, n int64, err error) {
	f, err := os.Open(d.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	cr := &countReader{r: bufio.NewReader(f)}
	var df diskFile
	if err := gob.NewDecoder(cr).Decode(&df); err != nil {
		return nil, cr.n, fmt.Errorf("expcache: %s: %w", d.path(key), err)
	}
	if df.Magic != diskMagic || df.Format != diskFormat ||
		df.Engine != EngineVersion || df.GoVersion != runtime.Version() ||
		df.GOARCH != runtime.GOARCH || df.Result == nil {
		return nil, cr.n, nil // stale entry from another engine/toolchain: miss
	}
	return df.Result, cr.n, nil
}

// store writes the entry for key atomically and returns the bytes
// written.
func (d *diskTier) store(key Key, res *player.Result) (int64, error) {
	p := d.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".tmp-*")
	if err != nil {
		return 0, err
	}
	cw := &countWriter{w: bufio.NewWriter(tmp)}
	err = gob.NewEncoder(cw).Encode(diskFile{
		Magic:     diskMagic,
		Format:    diskFormat,
		Engine:    EngineVersion,
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Result:    res,
	})
	if err == nil {
		err = cw.w.(*bufio.Writer).Flush()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	return cw.n, nil
}

type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

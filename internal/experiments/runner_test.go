package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/expcache"
	"repro/internal/origin"
	"repro/internal/services"
)

// renderResult flattens a result's tables and plots to one comparable
// string (timing fields are excluded — wall clock is never deterministic).
func renderResult(r Result) string {
	var b strings.Builder
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	for _, p := range r.Plots {
		b.WriteString(p)
		b.WriteString("\n")
	}
	return b.String()
}

// TestRunAllDeterminism is the engine's core guarantee: a cold serial
// run, a cold heavily parallel run, and a fully cache-warm run all
// produce byte-identical tables and plots for every experiment ID.
// Fixed seeds make each experiment deterministic in isolation;
// index-ordered collection makes the schedule irrelevant; and the
// session cache must be invisible in the output, serving results
// identical to a fresh computation.
func TestRunAllDeterminism(t *testing.T) {
	// Force real fan-out even on small CI machines: RunAll workers and
	// the intra-experiment sweep() both draw from the scheduler.
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	prevSched := sched
	sched = newScheduler(8)
	defer func() { sched = prevSched }()

	expcache.Default.Reset()
	serial, err := RunAll(context.Background(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	expcache.Default.Reset()
	var progressed atomic.Int32
	parallel, err := RunAll(context.Background(), Options{
		Workers:    8,
		OnProgress: func(Result) { progressed.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Third pass with the cache left warm from the parallel run: every
	// session is served from memory, output must not move a byte.
	warm, err := RunAll(context.Background(), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) || len(serial) != len(warm) || len(serial) != len(All()) {
		t.Fatalf("result counts differ: %d serial, %d parallel, %d warm, %d registered",
			len(serial), len(parallel), len(warm), len(All()))
	}
	if int(progressed.Load()) != len(parallel) {
		t.Errorf("OnProgress fired %d times for %d experiments", progressed.Load(), len(parallel))
	}
	for i := range serial {
		if serial[i].ID != parallel[i].ID {
			t.Fatalf("order diverged at %d: %s vs %s", i, serial[i].ID, parallel[i].ID)
		}
		s, p, w := renderResult(serial[i]), renderResult(parallel[i]), renderResult(warm[i])
		if s != p {
			t.Errorf("%s: output differs between Workers=1 and Workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
				serial[i].ID, s, p)
		}
		if s != w {
			t.Errorf("%s: output differs between cold and cache-warm runs:\n--- cold ---\n%s\n--- warm ---\n%s",
				serial[i].ID, s, w)
		}
		if s == "" {
			t.Errorf("%s: empty output", serial[i].ID)
		}
	}
	if st := expcache.Default.Snapshot(); st.MemHits == 0 {
		t.Errorf("warm pass recorded no memory hits: %+v", st)
	}
}

func TestRunAllSubset(t *testing.T) {
	ids := []string{"fig4", "fig3"} // deliberately not paper order
	results, err := RunAll(context.Background(), Options{Workers: 4, IDs: ids})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for i, id := range ids {
		if results[i].ID != id || results[i].Index != i {
			t.Errorf("result %d: got %s (index %d), want %s", i, results[i].ID, results[i].Index, id)
		}
	}
	if _, err := RunAll(context.Background(), Options{IDs: []string{"fig999"}}); err == nil {
		t.Error("unknown id did not error")
	}
}

func TestRunAllCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := RunAll(ctx, Options{Workers: 4, IDs: []string{"fig3", "fig4"}})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	for _, r := range results {
		if r.Err == nil && r.Tables == nil {
			t.Errorf("%s: neither ran nor marked with the context error", r.ID)
		}
	}
}

// TestSweepBoundedByScheduler is the oversubscription guard the
// scheduler exists for: a sweep whose items each run a nested sweep must
// never have more goroutines executing item work than the scheduler
// capacity plus the one slotless entry caller — not workers², as the old
// two-level pools allowed.
func TestSweepBoundedByScheduler(t *testing.T) {
	const capacity = 4
	prevSched := sched
	sched = newScheduler(capacity)
	defer func() { sched = prevSched }()

	var running, peak atomic.Int64
	inner := make([]int, 8)
	outer := make([]int, 16)
	_, err := sweep(context.Background(), outer, func(int) (int, error) {
		_, err := sweep(context.Background(), inner, func(int) (int, error) {
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			running.Add(-1)
			return 0, nil
		})
		return 0, err
	})
	if err != nil {
		t.Fatal(err)
	}
	// capacity slots + the slotless test goroutine entering the outer
	// sweep inline. 16×8 items through the old pools would have peaked
	// far above this.
	if p := peak.Load(); p > capacity+1 {
		t.Errorf("peak concurrency %d exceeds scheduler bound %d", p, capacity+1)
	} else if p < 2 {
		t.Errorf("peak concurrency %d: sweep never ran items in parallel", p)
	}
}

// TestSweepCancellation: cancelling the context mid-sweep must stop the
// fan-out — unclaimed items are skipped rather than drained — and the
// sweep must report the context error.
func TestSweepCancellation(t *testing.T) {
	// Hold the only scheduler slot so the sweep runs strictly inline and
	// the cancellation point is deterministic.
	prevSched := sched
	sched = newScheduler(1)
	defer func() { sched = prevSched }()
	if err := sched.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer sched.Release()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	items := make([]int, 100)
	var processed atomic.Int64
	_, err := sweep(ctx, items, func(int) (int, error) {
		if processed.Add(1) == 3 {
			cancel()
		}
		return 0, nil
	})
	if err != context.Canceled {
		t.Fatalf("sweep returned %v, want context.Canceled", err)
	}
	if n := processed.Load(); n != 3 {
		t.Errorf("processed %d items after cancellation at item 3", n)
	}
}

// TestServiceOriginConcurrentStress exercises the real origin cache the
// way parallel experiments do: every service requested from many
// goroutines at once. All callers of a service must get the same origin
// pointer (built once), and under -race the shared read paths must stay
// clean.
func TestServiceOriginConcurrentStress(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	svcs := allServices()
	const callers = 8
	got := make([][]*origin.Origin, len(svcs))
	for i := range got {
		got[i] = make([]*origin.Origin, callers)
	}
	var wg sync.WaitGroup
	errc := make(chan error, len(svcs)*callers)
	for si, svc := range svcs {
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func(si, c int, svc *services.Service) {
				defer wg.Done()
				org, err := serviceOrigin(svc)
				if err != nil {
					errc <- fmt.Errorf("%s: %w", svc.Name, err)
					return
				}
				got[si][c] = org
			}(si, c, svc)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	for si, svc := range svcs {
		for c := 1; c < callers; c++ {
			if got[si][c] != got[si][0] {
				t.Errorf("%s: caller %d got a different origin instance", svc.Name, c)
			}
		}
	}
}

// TestByIDCached: ByID must resolve from the cached index, returning a
// copy the caller can mutate without corrupting the registry.
func TestByIDCached(t *testing.T) {
	a, b := ByID("fig8"), ByID("fig8")
	if a == nil || b == nil {
		t.Fatal("fig8 not found")
	}
	if a == b {
		t.Error("ByID returned the same pointer twice; callers could alias mutations")
	}
	a.Title = "mutated"
	if c := ByID("fig8"); c.Title != b.Title {
		t.Error("mutating a ByID result leaked into the registry")
	}
}

package simnet

import "math"

// fheap is an indexed binary min-heap with float64 keys. The payload's
// current heap position is written back through set on every move, so a
// holder can Remove or Fix an element in O(log n) without searching; a
// position of -1 means "not in this heap". A max-heap is the same
// structure fed negated keys.
//
// The event engines keep every future state change in one of these
// heaps (pending first bytes, slow-start doublings, access-link profile
// boundaries, capped and uncapped completions), which is what turns the
// per-event O(F) scans of the reference formulation into O(log F).
type fheap[T any] struct {
	key []float64
	val []*T
	set func(*T, int)
}

func (h *fheap[T]) Len() int { return len(h.key) }

// MinKey returns the smallest key, or +Inf when empty, so callers can
// fold it into a next-event minimum without a length check.
func (h *fheap[T]) MinKey() float64 {
	if len(h.key) == 0 {
		return math.Inf(1)
	}
	return h.key[0]
}

// Min returns the payload with the smallest key (nil when empty).
func (h *fheap[T]) Min() *T {
	if len(h.val) == 0 {
		return nil
	}
	return h.val[0]
}

// Push inserts v with key k.
func (h *fheap[T]) Push(v *T, k float64) {
	h.key = append(h.key, k)
	h.val = append(h.val, v)
	h.set(v, len(h.key)-1)
	h.up(len(h.key) - 1)
}

// Pop removes and returns the payload with the smallest key.
func (h *fheap[T]) Pop() *T {
	v := h.val[0]
	h.swapOut(0)
	return v
}

// Remove drops the element at position i (the payload's written-back
// index). Callers validate membership (i >= 0) before the call.
func (h *fheap[T]) Remove(i int) { h.swapOut(i) }

// Fix updates the key of the element at position i and restores heap
// order.
func (h *fheap[T]) Fix(i int, k float64) {
	h.key[i] = k
	if !h.up(i) {
		h.down(i)
	}
}

// clear empties the heap, resetting every payload's position.
func (h *fheap[T]) clear() {
	for i, v := range h.val {
		h.set(v, -1)
		h.val[i] = nil
	}
	h.key = h.key[:0]
	h.val = h.val[:0]
}

func (h *fheap[T]) swapOut(i int) {
	last := len(h.key) - 1
	h.set(h.val[i], -1)
	if i != last {
		h.key[i] = h.key[last]
		h.val[i] = h.val[last]
		h.set(h.val[i], i)
	}
	h.key = h.key[:last]
	h.val[last] = nil
	h.val = h.val[:last]
	if i != last {
		if !h.up(i) {
			h.down(i)
		}
	}
}

// up sifts position i toward the root; it reports whether i moved.
func (h *fheap[T]) up(i int) bool {
	moved := false
	for i > 0 {
		p := (i - 1) / 2
		if h.key[p] <= h.key[i] {
			break
		}
		h.swap(p, i)
		i = p
		moved = true
	}
	return moved
}

func (h *fheap[T]) down(i int) {
	n := len(h.key)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.key[r] < h.key[l] {
			m = r
		}
		if h.key[i] <= h.key[m] {
			return
		}
		h.swap(i, m)
		i = m
	}
}

func (h *fheap[T]) swap(i, j int) {
	h.key[i], h.key[j] = h.key[j], h.key[i]
	h.val[i], h.val[j] = h.val[j], h.val[i]
	h.set(h.val[i], i)
	h.set(h.val[j], j)
}

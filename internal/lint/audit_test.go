package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/lint"
)

// boomAnalyzer reports every call to a function named boom — a
// minimal analyzer for exercising the suppression audit.
var boomAnalyzer = &lint.Analyzer{
	Name: "boom",
	Doc:  "test analyzer: flag calls to boom",
	Run: func(pass *lint.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "boom" {
					pass.Reportf(call.Pos(), "call to boom")
				}
				return true
			})
		}
		return nil
	},
}

const auditSrc = `package p

func boom() {}

func used() {
	boom() //vodlint:allow boom — load-bearing suppression
}

func stale() {
	_ = 1 //vodlint:allow boom — nothing to suppress here
}

func unknown() {
	_ = 2 //vodlint:allow nosuchanalyzer — typo in the name
}

func bare() {
	_ = 3 //vodlint:allow
}
`

func TestAuditReportsStaleDirectives(t *testing.T) {
	pkg := typecheck(t, auditSrc)
	audit := lint.NewAudit([]*lint.Analyzer{boomAnalyzer})
	diags, err := lint.RunWithAudit(pkg, []*lint.Analyzer{boomAnalyzer}, audit)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("want every finding suppressed, got %v", diags)
	}
	stale := audit.Stale()
	wants := []string{
		"stale //vodlint:allow boom",
		`unknown analyzer "nosuchanalyzer"`,
		"bare //vodlint:allow",
	}
	if len(stale) != len(wants) {
		t.Fatalf("want %d audit findings, got %d: %v", len(wants), len(stale), stale)
	}
	for i, want := range wants {
		if !strings.Contains(stale[i].Message, want) {
			t.Errorf("audit finding %d = %q, want substring %q", i, stale[i].Message, want)
		}
	}
}

func TestAuditQuietWhenEveryDirectiveFires(t *testing.T) {
	pkg := typecheck(t, "package p\n\nfunc boom() {}\n\nfunc f() {\n\tboom() //vodlint:allow boom — fires\n}\n")
	audit := lint.NewAudit([]*lint.Analyzer{boomAnalyzer})
	if _, err := lint.RunWithAudit(pkg, []*lint.Analyzer{boomAnalyzer}, audit); err != nil {
		t.Fatal(err)
	}
	if stale := audit.Stale(); len(stale) != 0 {
		t.Fatalf("want clean audit, got %v", stale)
	}
}

// typecheck builds a lint.Package from one import-free source string.
func typecheck(t *testing.T, src string) *lint.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	tpkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &lint.Package{Path: "p", Dir: ".", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

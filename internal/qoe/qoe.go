// Package qoe computes the paper's QoE metrics (§2.2) — average displayed
// bitrate, time on low-quality tracks, track switches, stall duration and
// startup delay — both from simulator ground truth and, like the paper,
// purely from observed traffic plus UI progress samples, including the
// buffer inference of §2.5 (download progress minus playback progress).
package qoe

import (
	"math"
	"sort"

	"repro/internal/media"
	"repro/internal/player"
	"repro/internal/traffic"
	"repro/internal/uimon"
)

// Report aggregates the QoE of one session.
type Report struct {
	// StartupDelay is the seconds until the first frame (-1 = never).
	StartupDelay float64
	// StallCount and StallSec summarise rebuffering after startup.
	StallCount int
	StallSec   float64
	// PlayedSec is the total playback time.
	PlayedSec float64
	// AvgBitrate is the playtime-weighted mean declared bitrate of
	// displayed segments, in bits/s.
	AvgBitrate float64
	// TimeOnTrack maps ladder index → displayed seconds.
	TimeOnTrack []float64
	// Switches counts displayed track changes; NonConsecutive counts
	// changes that skip rungs (worse for perceived quality).
	Switches       int
	NonConsecutive int
	// DataUsageBytes is the total bytes downloaded (media + documents).
	DataUsageBytes float64
	// WastedBytes is the bytes downloaded but never displayed.
	WastedBytes float64
}

// PctTimeBelow returns the fraction of playtime spent on tracks with a
// declared bitrate strictly below bps, given the ladder.
func (r *Report) PctTimeBelow(declared []float64, bps float64) float64 {
	if r.PlayedSec == 0 {
		return 0
	}
	t := 0.0
	for track, sec := range r.TimeOnTrack {
		if track < len(declared) && declared[track] < bps {
			t += sec
		}
	}
	return t / r.PlayedSec
}

// FromResult computes the report from simulator ground truth.
func FromResult(res *player.Result) Report {
	rep := Report{
		StartupDelay:   res.StartupDelay,
		StallCount:     len(res.Stalls),
		StallSec:       res.TotalStall(),
		PlayedSec:      res.PlayedSeconds(),
		TimeOnTrack:    make([]float64, len(res.Declared)),
		DataUsageBytes: res.TotalBytes,
		WastedBytes:    res.WastedBytes,
	}
	var weighted float64
	var playedMedia float64
	prev := -1
	for i, track := range res.Displayed {
		if track < 0 {
			continue
		}
		dur := segDuration(res, i)
		weighted += res.Declared[track] * dur
		playedMedia += dur
		rep.TimeOnTrack[track] += dur
		if prev >= 0 && track != prev {
			rep.Switches++
			if abs(track-prev) > 1 {
				rep.NonConsecutive++
			}
		}
		prev = track
	}
	if playedMedia > 0 {
		rep.AvgBitrate = weighted / playedMedia
	}
	return rep
}

// FromSummary converts a session's online Summary — the streaming
// digest lean sessions and background flows produce — into a Report.
// For a seek-free full-fidelity session the result is bit-identical to
// FromResult over the same session's Result: the summary accumulates
// the very same folds online, in the same order.
func FromSummary(s *player.Summary) Report {
	return Report{
		StartupDelay:   s.StartupDelay,
		StallCount:     s.StallCount,
		StallSec:       s.StallSec,
		PlayedSec:      s.PlayedSec,
		AvgBitrate:     s.AvgBitrate(),
		TimeOnTrack:    s.TimeOnTrack,
		Switches:       s.Switches,
		NonConsecutive: s.NonConsecutive,
		DataUsageBytes: s.TotalBytes,
		WastedBytes:    s.WastedBytes,
	}
}

func segDuration(res *player.Result, i int) float64 {
	start := float64(i) * res.SegmentDuration
	if start+res.SegmentDuration > res.MediaDuration {
		return res.MediaDuration - start
	}
	return res.SegmentDuration
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Inferred is a session view reconstructed the way the paper does it:
// traffic analysis for quality and switches, UI samples for stalls and
// startup, and the §2.5 buffer inference combining the two.
type Inferred struct {
	// Report carries the recovered QoE metrics.
	Report Report
	// Buffer is the inferred buffer occupancy at 1 s granularity.
	Buffer []BufferPoint
}

// BufferPoint is one inferred buffer-occupancy observation.
type BufferPoint struct {
	// T is the wall time.
	T float64
	// VideoSec and AudioSec are inferred buffered durations (audio 0
	// for multiplexed services).
	VideoSec, AudioSec float64
}

// Infer reconstructs QoE and buffer occupancy from the analyzer output
// and UI progress samples alone — no simulator internals.
func Infer(tr *traffic.Result, samples []uimon.Sample) Inferred {
	var inf Inferred
	rep := &inf.Report
	rep.StartupDelay = uimon.StartupDelay(samples)
	stalls := uimon.Stalls(samples, 1)
	rep.StallCount = len(stalls)
	for _, s := range stalls {
		rep.StallSec += s.Duration()
	}

	ladder := tr.Presentation.Video
	rep.TimeOnTrack = make([]float64, len(ladder))

	// Displayed quality: the paper replays the buffer — the last
	// download of an index before its playback time is what's shown.
	type dl struct {
		track int
		end   float64
		dur   float64
		start float64 // media start
	}
	latest := map[int]dl{} // video index -> latest download (by completion)
	maxIndex := -1
	for _, s := range tr.Segments {
		if s.Type != media.TypeVideo {
			continue
		}
		if s.Index > maxIndex {
			maxIndex = s.Index
		}
		rep.DataUsageBytes += float64(s.Bytes)
		cur, ok := latest[s.Index]
		if !ok || s.End > cur.end {
			if ok {
				rep.WastedBytes += float64(s.Bytes) // approximation: earlier copy wasted
			}
			latest[s.Index] = dl{track: s.Track, end: s.End, dur: s.Duration, start: s.MediaStart}
		}
	}
	for _, s := range tr.Segments {
		if s.Type == media.TypeAudio {
			rep.DataUsageBytes += float64(s.Bytes)
		}
	}

	// Walk segments in media order; a segment was displayed if playback
	// progressed past its media start.
	endPos := 0.0
	if len(samples) > 0 {
		endPos = samples[len(samples)-1].Position
	}
	var weighted, playedMedia float64
	prev := -1
	indices := make([]int, 0, len(latest))
	for i := range latest {
		indices = append(indices, i)
	}
	sort.Ints(indices)
	for _, i := range indices {
		d := latest[i]
		if d.start >= endPos {
			continue
		}
		weighted += ladder[d.track].DeclaredBitrate * d.dur
		playedMedia += d.dur
		rep.TimeOnTrack[d.track] += d.dur
		if prev >= 0 && d.track != prev {
			rep.Switches++
			if abs(d.track-prev) > 1 {
				rep.NonConsecutive++
			}
		}
		prev = d.track
	}
	if playedMedia > 0 {
		rep.AvgBitrate = weighted / playedMedia
	}
	rep.PlayedSec = playedMedia + rep.StallSec*0 // media seconds shown
	if rep.StartupDelay >= 0 && len(samples) > 0 {
		rep.PlayedSec = samples[len(samples)-1].T - rep.StartupDelay - rep.StallSec
		if rep.PlayedSec < 0 {
			rep.PlayedSec = 0
		}
	}

	// Buffer inference (§2.5): buffered = contiguous downloaded media
	// end minus playback position, per content type.
	inf.Buffer = inferBuffer(tr, samples)
	return inf
}

func inferBuffer(tr *traffic.Result, samples []uimon.Sample) []BufferPoint {
	var out []BufferPoint
	for _, smp := range samples {
		pos := smp.Position
		v := contiguousEnd(tr.Segments, media.TypeVideo, smp.T, pos)
		a := contiguousEnd(tr.Segments, media.TypeAudio, smp.T, pos)
		out = append(out, BufferPoint{T: smp.T, VideoSec: math.Max(0, v-pos), AudioSec: math.Max(0, a-pos)})
	}
	return out
}

// contiguousEnd returns the contiguous downloaded media end of a type at
// wall time t, starting from playback position pos.
func contiguousEnd(segs []traffic.SegmentDownload, typ media.MediaType, t, pos float64) float64 {
	type span struct{ start, end float64 }
	var spans []span
	for _, s := range segs {
		if s.Type != typ || s.End > t {
			continue
		}
		spans = append(spans, span{s.MediaStart, s.MediaStart + s.Duration})
	}
	if len(spans) == 0 {
		return pos
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	end := pos
	for _, sp := range spans {
		if sp.start > end+1e-6 {
			break
		}
		if sp.end > end {
			end = sp.end
		}
	}
	return end
}

package fleet

import (
	"fmt"
	"strings"

	"repro/internal/textplot"
)

// Text rendering of a Report for cmd/vodfleet: a per-service summary
// table plus population CDFs reconstructed from the report histograms.
// Everything here reads only the Dist structs, so it is as deterministic
// as the report itself.

// Summary tabulates per-service population QoE.
func (r *Report) Summary() *textplot.Table {
	t := &textplot.Table{
		Title: "Population QoE by service",
		Note: fmt.Sprintf("%d sessions, %d cells, %.0f Mbit/s shared edge per cell, seed %d",
			r.Sessions, r.Cells, r.Config.EdgeMbps, r.Config.Seed),
		Header: []string{"service", "sessions", "started", "bitrate p50 (Mbps)", "p90", "stall ratio p50", "p90", "startup p50 (s)", "p90", "switch/min p50"},
	}
	for _, s := range r.Services {
		t.AddRow(
			s.Service,
			fmt.Sprintf("%d", s.Sessions),
			fmt.Sprintf("%d", s.Started),
			fmt.Sprintf("%.2f", s.BitrateMbps.P50),
			fmt.Sprintf("%.2f", s.BitrateMbps.P90),
			textplot.Pct(s.StallRatio.P50),
			textplot.Pct(s.StallRatio.P90),
			textplot.Secs(s.StartupDelaySec.P50),
			textplot.Secs(s.StartupDelaySec.P90),
			fmt.Sprintf("%.1f", s.SwitchesPerMin.P50),
		)
	}
	return t
}

// cdfSeries rebuilds a CDF polyline from a Dist's histogram: x runs over
// the bin upper edges, y over the cumulative fraction (Under lifts the
// start, Over keeps the curve short of 1 inside [Lo, Hi]).
func cdfSeries(name string, d Dist) textplot.Series {
	total := d.Under + d.Over
	for _, c := range d.Counts {
		total += c
	}
	if total == 0 {
		return textplot.Series{Name: name}
	}
	w := (d.Hi - d.Lo) / float64(len(d.Counts))
	xs := make([]float64, 0, len(d.Counts)+1)
	ys := make([]float64, 0, len(d.Counts)+1)
	cum := d.Under
	xs = append(xs, d.Lo)
	ys = append(ys, float64(cum)/float64(total))
	for i, c := range d.Counts {
		cum += c
		xs = append(xs, d.Lo+float64(i+1)*w)
		ys = append(ys, float64(cum)/float64(total))
	}
	return textplot.Series{Name: name, X: xs, Y: ys}
}

// CDFPlots renders the per-service population CDFs (average bitrate,
// stall ratio, startup delay), one ASCII plot per metric with one curve
// per service.
func (r *Report) CDFPlots(width, height int) string {
	var b strings.Builder
	metrics := []struct {
		title string
		pick  func(ServiceStats) Dist
	}{
		{"CDF: per-session average bitrate (Mbit/s)", func(s ServiceStats) Dist { return s.BitrateMbps }},
		{"CDF: per-session stall ratio", func(s ServiceStats) Dist { return s.StallRatio }},
		{"CDF: startup delay (s)", func(s ServiceStats) Dist { return s.StartupDelaySec }},
	}
	for _, m := range metrics {
		series := make([]textplot.Series, 0, len(r.Services))
		for _, s := range r.Services {
			if sr := cdfSeries(s.Service, m.pick(s)); len(sr.X) > 0 {
				series = append(series, sr)
			}
		}
		b.WriteString(textplot.Plot(m.title, width, height, series...))
		b.WriteByte('\n')
	}
	return b.String()
}

// CellTable tabulates the cell-level distributions.
func (r *Report) CellTable() *textplot.Table {
	t := &textplot.Table{
		Title:  "Cell-level distributions",
		Note:   "one sample per cell (shared-edge coupling)",
		Header: []string{"metric", "mean", "p10", "p50", "p90"},
	}
	add := func(name string, d Dist) {
		t.AddRow(name,
			fmt.Sprintf("%.3f", d.Mean),
			fmt.Sprintf("%.3f", d.P10),
			fmt.Sprintf("%.3f", d.P50),
			fmt.Sprintf("%.3f", d.P90))
	}
	add("Jain fairness (bitrate)", r.FairnessJain)
	add("edge utilization", r.EdgeUtilization)
	return t
}

// CDNTable tabulates the edge-cache tier; nil when the run had no
// cache config.
func (r *Report) CDNTable() *textplot.Table {
	c := r.CDN
	if c == nil {
		return nil
	}
	t := &textplot.Table{
		Title: "Edge-cache tier",
		Note: fmt.Sprintf("hit ratio %.1f%%, origin offload %.2f GB (origin carried %.2f GB), %d sessions re-routed",
			c.HitRatio*100, c.OriginOffloadBytes/1e9, c.OriginBytes/1e9, c.Rerouted),
		Header: []string{"metric", "value"},
	}
	t.AddRow("edge hits / misses", fmt.Sprintf("%d / %d", c.EdgeHits, c.EdgeMisses))
	t.AddRow("metro hits / misses", fmt.Sprintf("%d / %d", c.MetroHits, c.MetroMisses))
	t.AddRow("hit bytes", fmt.Sprintf("%.2f GB", c.HitBytes/1e9))
	t.AddRow("backhaul bytes", fmt.Sprintf("%.2f GB", c.BackhaulBytes/1e9))
	t.AddRow("cell hit ratio p10/p50/p90", fmt.Sprintf("%.3f / %.3f / %.3f",
		c.CellHitRatio.P10, c.CellHitRatio.P50, c.CellHitRatio.P90))
	t.AddRow("corr(hit ratio, startup)", fmt.Sprintf("%+.3f", c.StartupHitCorr))
	t.AddRow("corr(hit ratio, stall)", fmt.Sprintf("%+.3f", c.StallHitCorr))
	for _, b := range c.Buckets {
		if b.Cells == 0 {
			continue
		}
		t.AddRow(fmt.Sprintf("cells @ hit %.1f-%.1f", b.Lo, b.Hi),
			fmt.Sprintf("%d cells, startup %.2fs, stall %.1f%%", b.Cells, b.MeanStartupSec, b.MeanStallRatio*100))
	}
	return t
}

// Package smooth encodes and parses Microsoft SmoothStreaming client
// manifests (the wire format of services S1–S2). Fragment URLs follow the
// conventional QualityLevels({bitrate})/Fragments({type}={start}) template
// with start times in 100 ns units.
package smooth

import (
	"encoding/xml"
	"fmt"
	"strings"

	"repro/internal/manifest"
	"repro/internal/media"
)

type xmlSmoothStreamingMedia struct {
	XMLName       xml.Name         `xml:"SmoothStreamingMedia"`
	MajorVersion  int              `xml:"MajorVersion,attr"`
	MinorVersion  int              `xml:"MinorVersion,attr"`
	Duration      uint64           `xml:"Duration,attr"`
	TimeScale     uint64           `xml:"TimeScale,attr"`
	StreamIndexes []xmlStreamIndex `xml:"StreamIndex"`
}

type xmlStreamIndex struct {
	Type          string            `xml:"Type,attr"`
	Chunks        int               `xml:"Chunks,attr"`
	URL           string            `xml:"Url,attr"`
	QualityLevels []xmlQualityLevel `xml:"QualityLevel"`
	Cs            []xmlChunk        `xml:"c"`
}

type xmlQualityLevel struct {
	Index     int    `xml:"Index,attr"`
	Bitrate   int64  `xml:"Bitrate,attr"`
	MaxWidth  int    `xml:"MaxWidth,attr,omitempty"`
	MaxHeight int    `xml:"MaxHeight,attr,omitempty"`
	FourCC    string `xml:"FourCC,attr,omitempty"`
}

type xmlChunk struct {
	D uint64 `xml:"d,attr"`
}

// Encode renders the SmoothStreaming manifest for a presentation.
func Encode(p *manifest.Presentation) ([]byte, error) {
	doc := xmlSmoothStreamingMedia{
		MajorVersion: 2,
		TimeScale:    uint64(manifest.SmoothTimescale),
		Duration:     uint64(p.Duration * manifest.SmoothTimescale),
	}
	addStream := func(kind string, rs []*manifest.Rendition) {
		if len(rs) == 0 {
			return
		}
		si := xmlStreamIndex{
			Type:   kind,
			Chunks: len(rs[0].Segments),
			URL:    fmt.Sprintf("QualityLevels({bitrate})/Fragments(%s={start time})", kind),
		}
		for i, r := range rs {
			ql := xmlQualityLevel{Index: i, Bitrate: int64(r.DeclaredBitrate), MaxWidth: r.Width, MaxHeight: r.Height}
			if kind == "video" {
				ql.FourCC = "H264"
			} else {
				ql.FourCC = "AACL"
			}
			si.QualityLevels = append(si.QualityLevels, ql)
		}
		for _, s := range rs[0].Segments {
			si.Cs = append(si.Cs, xmlChunk{D: uint64(s.Duration*manifest.SmoothTimescale + 0.5)})
		}
		doc.StreamIndexes = append(doc.StreamIndexes, si)
	}
	addStream("video", p.Video)
	addStream("audio", p.Audio)
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), out...), nil
}

// Decode reconstructs a Presentation from a SmoothStreaming manifest.
// Segment sizes are unknown to the client before download (the paper
// issued HEAD requests to learn them); Size is left 0.
func Decode(name string, body []byte) (*manifest.Presentation, error) {
	var doc xmlSmoothStreamingMedia
	if err := xml.Unmarshal(body, &doc); err != nil {
		return nil, fmt.Errorf("smooth: %w", err)
	}
	ts := float64(doc.TimeScale)
	if ts == 0 {
		ts = manifest.SmoothTimescale
	}
	p := &manifest.Presentation{
		Name:       name,
		Protocol:   manifest.Smooth,
		Addressing: manifest.TemplateURLs,
		Duration:   float64(doc.Duration) / ts,
	}
	for _, si := range doc.StreamIndexes {
		kind := media.TypeVideo
		if strings.EqualFold(si.Type, "audio") {
			kind = media.TypeAudio
		}
		for i, ql := range si.QualityLevels {
			r := &manifest.Rendition{
				ID:              i,
				Type:            kind,
				DeclaredBitrate: float64(ql.Bitrate),
				Width:           ql.MaxWidth,
				Height:          ql.MaxHeight,
			}
			start := 0.0
			for _, c := range si.Cs {
				d := float64(c.D) / ts
				r.Segments = append(r.Segments, manifest.Segment{
					URL:      manifest.SmoothFragmentURL(name, strings.ToLower(si.Type), float64(ql.Bitrate), start),
					Duration: d,
					Start:    start,
				})
				start += d
				if d > r.SegmentDuration {
					r.SegmentDuration = d
				}
			}
			if kind == media.TypeAudio {
				p.Audio = append(p.Audio, r)
			} else {
				p.Video = append(p.Video, r)
			}
		}
	}
	return p, nil
}

package fleet

import (
	"encoding/json"
	"math"

	"repro/internal/cdn"
	"repro/internal/qoe"
)

// This file is the memory-bounded reduction layer: a fleet of any size
// folds into a fixed number of fixed-size accumulators, so a million-
// session run costs the same aggregate memory as a hundred-session run.
//
// The per-service accumulators are columnar (struct-of-arrays): one
// int64 slab carries every histogram bin and counter, one float64 slab
// carries every Welford column, for all services × metrics. A session
// observation touches one row of each column; a merge is a handful of
// flat slice loops over contiguous memory — no per-metric pointers, no
// per-histogram allocations, and a cell aggregate is two slabs the
// allocator hands back in one piece. All merges happen in deterministic
// cell-index order within a shard and shard-index order across shards
// (see Run), which makes the floating-point fold sequence — and
// therefore the report bytes — independent of the worker count and of
// the steal schedule.

// hist is a fixed-bin histogram over [Lo, Hi). Out-of-range samples are
// counted in Under/Over so totals are never silently lost. The fleet-
// level per-cell metrics (fairness, utilization) use it directly; the
// per-service hot path uses the same binning arithmetic on the columnar
// slabs.
type hist struct {
	Lo, Hi float64
	Counts []int64
	Under  int64
	Over   int64
}

func newHist(lo, hi float64, bins int) *hist {
	return &hist{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

func (h *hist) add(v float64) {
	if v < h.Lo || math.IsNaN(v) {
		h.Under++
		return
	}
	if v >= h.Hi {
		h.Over++
		return
	}
	i := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i >= len(h.Counts) { // guard the v≈Hi float edge
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

func (h *hist) merge(o *hist) {
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.Under += o.Under
	h.Over += o.Over
}

// quantileWalk returns the p-th percentile (0..100) of a binned
// distribution by walking the cumulative counts: under samples sit at
// lo, over samples at hi, and a bin resolves to its upper edge. Integer
// walk — fully deterministic.
func quantileWalk(p, lo, hi float64, counts []int64, under, over int64) float64 {
	n := under + over
	for _, c := range counts {
		n += c
	}
	if n == 0 {
		return 0
	}
	target := int64(math.Ceil(p / 100 * float64(n)))
	if target < 1 {
		target = 1
	}
	cum := under
	if cum >= target {
		return lo
	}
	w := (hi - lo) / float64(len(counts))
	for i, c := range counts {
		cum += c
		if cum >= target {
			return lo + float64(i+1)*w
		}
	}
	return hi
}

// welford is Welford's online mean/variance, merged pairwise with the
// Chan et al. update. Merge order is fixed by the caller.
type welford struct {
	N    int64
	Mean float64
	M2   float64
}

func (w *welford) add(v float64) {
	w.N++
	d := v - w.Mean
	w.Mean += d / float64(w.N)
	w.M2 += d * (v - w.Mean)
}

func (w *welford) merge(o welford) {
	if o.N == 0 {
		return
	}
	if w.N == 0 {
		*w = o
		return
	}
	n := float64(w.N + o.N)
	d := o.Mean - w.Mean
	w.Mean += d * float64(o.N) / n
	w.M2 += o.M2 + d*d*float64(w.N)*float64(o.N)/n
	w.N += o.N
}

func stdOf(n int64, m2 float64) float64 {
	if n < 2 {
		return 0
	}
	return math.Sqrt(m2 / float64(n-1))
}

// metricAgg pairs the exact online moments with a histogram — the
// fleet-level singles (fairness, utilization) that don't justify a
// columnar layout.
type metricAgg struct {
	w welford
	h *hist
}

func (m *metricAgg) add(v float64) {
	m.w.add(v)
	m.h.add(v)
}

func (m *metricAgg) merge(o *metricAgg) {
	m.w.merge(o.w)
	m.h.merge(o.h)
}

func (m *metricAgg) dist() Dist {
	return Dist{
		Count:  m.w.N,
		Mean:   m.w.Mean,
		Std:    stdOf(m.w.N, m.w.M2),
		P10:    quantileWalk(10, m.h.Lo, m.h.Hi, m.h.Counts, m.h.Under, m.h.Over),
		P50:    quantileWalk(50, m.h.Lo, m.h.Hi, m.h.Counts, m.h.Under, m.h.Over),
		P90:    quantileWalk(90, m.h.Lo, m.h.Hi, m.h.Counts, m.h.Under, m.h.Over),
		Lo:     m.h.Lo,
		Hi:     m.h.Hi,
		Counts: m.h.Counts,
		Under:  m.h.Under,
		Over:   m.h.Over,
	}
}

// Histogram geometry. Bounds are part of the report schema: changing
// them changes the bytes (EngineVersion covers the cache side).
const (
	bitrateHiMbps = 10  // ladder tops sit well below 10 Mbit/s
	startupHiSec  = 30  // startup delays beyond 30 s land in Over
	switchesHiPM  = 12  // switches per playback minute
	utilHi        = 1.2 // >1 would mean a conservation violation
)

const (
	mBitrate = iota
	mStall
	mStartup
	mSwitches
	nMetrics
)

var (
	metricBins = [nMetrics]int{40, 20, 30, 24}
	metricLo   = [nMetrics]float64{0, 0, 0, 0}
	metricHi   = [nMetrics]float64{bitrateHiMbps, 1, startupHiSec, switchesHiPM}
	// metricOff is each metric's bin offset inside a service's stretch
	// of the histogram slab; binsPerSvc is the stretch length.
	metricOff  = [nMetrics]int{0, 40, 60, 90}
	binsPerSvc = 114
)

// svcCols holds every per-service accumulator for the whole mix in two
// slabs. Row r = svc*nMetrics + metric addresses the Welford and
// under/over columns; the histogram bins for (svc, metric) live at
// counts[svc*binsPerSvc+metricOff[metric] : +metricBins[metric]].
type svcCols struct {
	nsvc int

	sessions []int64 // per service: every observed session
	started  []int64 // per service: sessions that reached first frame

	n     []int64 // Welford count, per row
	under []int64 // below-range samples, per row
	over  []int64 // above-range samples, per row

	mean []float64 // Welford mean, per row
	m2   []float64 // Welford M2, per row

	counts []int64 // histogram slab
}

func newSvcCols(nsvc int) *svcCols {
	rows := nsvc * nMetrics
	// One int64 slab and one float64 slab back every column, so a cell
	// aggregate is two allocations and merges stream through contiguous
	// memory.
	ints := make([]int64, 2*nsvc+3*rows+nsvc*binsPerSvc)
	floats := make([]float64, 2*rows)
	c := &svcCols{nsvc: nsvc}
	c.sessions, ints = ints[:nsvc], ints[nsvc:]
	c.started, ints = ints[:nsvc], ints[nsvc:]
	c.n, ints = ints[:rows], ints[rows:]
	c.under, ints = ints[:rows], ints[rows:]
	c.over, ints = ints[:rows], ints[rows:]
	c.counts = ints
	c.mean, floats = floats[:rows], floats[rows:]
	c.m2 = floats
	return c
}

// add folds one sample of a metric for a service: a Welford column
// update plus one histogram bin increment, same arithmetic as
// welford.add and hist.add.
//
//vodlint:hotpath — columnar fold: several calls per session, a million sessions per report
func (c *svcCols) add(svc, metric int, v float64) {
	row := svc*nMetrics + metric
	c.n[row]++
	d := v - c.mean[row]
	c.mean[row] += d / float64(c.n[row])
	c.m2[row] += d * (v - c.mean[row])

	lo, hi := metricLo[metric], metricHi[metric]
	if v < lo || math.IsNaN(v) {
		c.under[row]++
		return
	}
	if v >= hi {
		c.over[row]++
		return
	}
	bins := metricBins[metric]
	i := int((v - lo) / (hi - lo) * float64(bins))
	if i >= bins { // guard the v≈hi float edge
		i = bins - 1
	}
	c.counts[svc*binsPerSvc+metricOff[metric]+i]++
}

// merge folds o into c: flat loops over the slabs, with the Chan et al.
// pairwise update per Welford row. Callers fix the merge order.
//
//vodlint:hotpath — shard-aggregate merge: once per cell on the prefix-fold path
func (c *svcCols) merge(o *svcCols) {
	for i := range c.sessions {
		c.sessions[i] += o.sessions[i]
		c.started[i] += o.started[i]
	}
	for r := range c.n {
		if o.n[r] == 0 {
			continue
		}
		if c.n[r] == 0 {
			c.n[r], c.mean[r], c.m2[r] = o.n[r], o.mean[r], o.m2[r]
			continue
		}
		n := float64(c.n[r] + o.n[r])
		d := o.mean[r] - c.mean[r]
		c.mean[r] += d * float64(o.n[r]) / n
		c.m2[r] += o.m2[r] + d*d*float64(c.n[r])*float64(o.n[r])/n
		c.n[r] += o.n[r]
	}
	for i := range c.under {
		c.under[i] += o.under[i]
		c.over[i] += o.over[i]
	}
	for i, v := range o.counts {
		c.counts[i] += v
	}
}

// dist renders one (service, metric) cell of the columns as a Dist.
func (c *svcCols) dist(svc, metric int) Dist {
	row := svc*nMetrics + metric
	lo, hi := metricLo[metric], metricHi[metric]
	bins := c.counts[svc*binsPerSvc+metricOff[metric] : svc*binsPerSvc+metricOff[metric]+metricBins[metric]]
	return Dist{
		Count:  c.n[row],
		Mean:   c.mean[row],
		Std:    stdOf(c.n[row], c.m2[row]),
		P10:    quantileWalk(10, lo, hi, bins, c.under[row], c.over[row]),
		P50:    quantileWalk(50, lo, hi, bins, c.under[row], c.over[row]),
		P90:    quantileWalk(90, lo, hi, bins, c.under[row], c.over[row]),
		Lo:     lo,
		Hi:     hi,
		Counts: bins,
		Under:  c.under[row],
		Over:   c.over[row],
	}
}

// cellAgg is one cell's streaming fold: the columnar per-service
// accumulators plus the cell-level fairness and utilization samples.
// bitrates is bounded by the cell size (ClientsPerCell), not the fleet
// size.
type cellAgg struct {
	cols       *svcCols
	bitrates   []float64 // per started client, for the Jain index
	delivered  float64   // bytes the shared edge actually carried
	offered    float64   // edge capacity integral over the cell run, bytes
	full       int64     // sessions simulated at full fidelity
	background int64     // sessions simulated as background flows

	// Edge-cache tier (set when the run has a cdn config): the cell's
	// cache counters plus cell-level QoE moments, kept so the fleet
	// fold can couple per-cell hit ratio to per-cell QoE.
	cdnOn       bool
	cdnStats    cdn.Stats
	cellStartup welford // per started session, within this cell
	cellStall   welford // per started session with playback, within this cell
}

func newCellAgg(nsvc int) *cellAgg {
	return &cellAgg{cols: newSvcCols(nsvc)}
}

// observe folds one finished session. Sessions that never displayed a
// frame (StartupDelay < 0 — the viewer left before startup) count
// toward sessions but contribute no metric samples; the started/sessions
// ratio reports them. Full sessions arrive here via qoe.FromSummary over
// the player's online digest; background flows via the same path over
// their coarse digest — the fold cannot tell them apart.
//
//vodlint:hotpath — per-session fold into the columnar slabs
func (a *cellAgg) observe(svcIdx int, rep qoe.Report) {
	a.cols.sessions[svcIdx]++
	if rep.StartupDelay < 0 {
		return
	}
	a.cols.started[svcIdx]++
	a.cols.add(svcIdx, mBitrate, rep.AvgBitrate/1e6)
	a.bitrates = append(a.bitrates, rep.AvgBitrate)
	if denom := rep.PlayedSec + rep.StallSec; denom > 0 {
		a.cols.add(svcIdx, mStall, rep.StallSec/denom)
		a.cellStall.add(rep.StallSec / denom)
	}
	a.cols.add(svcIdx, mStartup, rep.StartupDelay)
	a.cellStartup.add(rep.StartupDelay)
	if rep.PlayedSec > 0 {
		a.cols.add(svcIdx, mSwitches, float64(rep.Switches)/(rep.PlayedSec/60))
	}
}

// finishCell records the cell-level samples once the simulation is
// done: delivered bytes (for utilization = delivered / offered) and the
// edge capacity integral in bytes.
func (a *cellAgg) finishCell(deliveredBytes, capacityIntegralBps float64) {
	a.delivered = deliveredBytes
	a.offered = capacityIntegralBps / 8
}

// nHitBuckets fixes the hit-ratio bucket grid of the QoE coupling
// section: [0,0.2) … [0.8,1] — part of the report schema.
const nHitBuckets = 5

// fleetAgg folds cellAggs in cell-index order; shard aggregates fold
// into the final fleetAgg in shard-index order.
type fleetAgg struct {
	cols        *svcCols
	fairness    metricAgg
	utilization metricAgg
	totalBytes  float64
	cellsMerged int
	full        int64
	background  int64

	// Edge-cache fold: fleet-wide counters, the per-cell hit-ratio
	// distribution, and the raw second moments for the Pearson
	// correlation of cell hit ratio against cell mean startup and cell
	// mean stall ratio. Every term is commutative-sum data, but the
	// fold order is fixed anyway by the shard prefix merge.
	cdnOn                              bool
	cdnStats                           cdn.Stats
	cellHit                            metricAgg
	corrN                              int64
	sumH, sumH2, sumQs, sumQs2, sumHQs float64
	sumQt, sumQt2, sumHQt              float64
	bktCells                           [nHitBuckets]int64
	bktStartup                         [nHitBuckets]float64
	bktStall                           [nHitBuckets]float64
}

func newFleetAgg(nsvc int) *fleetAgg {
	return &fleetAgg{
		cols:        newSvcCols(nsvc),
		fairness:    metricAgg{h: newHist(0, 1, 20)},
		utilization: metricAgg{h: newHist(0, utilHi, 24)},
		cellHit:     metricAgg{h: newHist(0, 1, 20)}, // fully-hit cells land in Over, like jain == 1
	}
}

// hitBucket maps a hit ratio to its coupling bucket.
func hitBucket(h float64) int {
	i := int(h * nHitBuckets)
	if i >= nHitBuckets {
		i = nHitBuckets - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}

func (a *fleetAgg) merge(c *cellAgg) {
	a.cols.merge(c.cols)
	if len(c.bitrates) > 0 {
		a.fairness.add(jain(c.bitrates))
	}
	if c.offered > 0 {
		a.utilization.add(c.delivered / c.offered)
	}
	a.totalBytes += c.delivered
	a.cellsMerged++
	a.full += c.full
	a.background += c.background
	if c.cdnOn {
		a.cdnOn = true
		a.cdnStats.Add(c.cdnStats)
		h := c.cdnStats.HitRatio()
		a.cellHit.add(h)
		if c.cellStartup.N > 0 {
			qs, qt := c.cellStartup.Mean, c.cellStall.Mean
			a.corrN++
			a.sumH += h
			a.sumH2 += h * h
			a.sumQs += qs
			a.sumQs2 += qs * qs
			a.sumHQs += h * qs
			a.sumQt += qt
			a.sumQt2 += qt * qt
			a.sumHQt += h * qt
			b := hitBucket(h)
			a.bktCells[b]++
			a.bktStartup[b] += qs
			a.bktStall[b] += qt
		}
	}
}

// mergeFleet folds another fleetAgg (a completed shard) into a.
func (a *fleetAgg) mergeFleet(o *fleetAgg) {
	a.cols.merge(o.cols)
	a.fairness.merge(&o.fairness)
	a.utilization.merge(&o.utilization)
	a.totalBytes += o.totalBytes
	a.cellsMerged += o.cellsMerged
	a.full += o.full
	a.background += o.background
	if o.cdnOn {
		a.cdnOn = true
		a.cdnStats.Add(o.cdnStats)
		a.cellHit.merge(&o.cellHit)
		a.corrN += o.corrN
		a.sumH += o.sumH
		a.sumH2 += o.sumH2
		a.sumQs += o.sumQs
		a.sumQs2 += o.sumQs2
		a.sumHQs += o.sumHQs
		a.sumQt += o.sumQt
		a.sumQt2 += o.sumQt2
		a.sumHQt += o.sumHQt
		for i := 0; i < nHitBuckets; i++ {
			a.bktCells[i] += o.bktCells[i]
			a.bktStartup[i] += o.bktStartup[i]
			a.bktStall[i] += o.bktStall[i]
		}
	}
}

// pearson computes the correlation coefficient from raw second
// moments; 0 when either variable is constant (or n < 2).
func pearson(n int64, sx, sx2, sy, sy2, sxy float64) float64 {
	if n < 2 {
		return 0
	}
	fn := float64(n)
	cov := fn*sxy - sx*sy
	vx := fn*sx2 - sx*sx
	vy := fn*sy2 - sy*sy
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// jain computes Jain's fairness index: (Σx)² / (n·Σx²). 1 means every
// client achieved the same bitrate; 1/n means one client took it all.
func jain(xs []float64) float64 {
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 1 // everyone equally got nothing
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}

// Dist is the JSON form of one metric's population distribution.
type Dist struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Std   float64 `json:"std"`
	P10   float64 `json:"p10"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	// Counts are the fixed histogram bins over [Lo, Hi); Under/Over
	// count the clipped tails.
	Counts []int64 `json:"counts"`
	Under  int64   `json:"under,omitempty"`
	Over   int64   `json:"over,omitempty"`
}

// ServiceStats is one service's slice of the population.
type ServiceStats struct {
	Service         string `json:"service"`
	Sessions        int64  `json:"sessions"`
	Started         int64  `json:"started"`
	BitrateMbps     Dist   `json:"bitrate_mbps"`
	StallRatio      Dist   `json:"stall_ratio"`
	StartupDelaySec Dist   `json:"startup_delay_sec"`
	SwitchesPerMin  Dist   `json:"switches_per_min"`
}

// FocusSample is one 1 Hz point of a focus session's buffer timeline.
type FocusSample struct {
	T         float64 `json:"t"`
	Playhead  float64 `json:"playhead"`
	BufferSec float64 `json:"buffer_sec"`
}

// FocusSession is the retained full-fidelity record of one seeded focus
// sample member: per-session QoE plus the displayed-track and buffer
// timelines the population aggregates discard. Focus members that drew
// the background tier are skipped (they have no full Result), so the
// focus list never perturbs the population sections.
type FocusSession struct {
	Cell            int           `json:"cell"`
	Member          int           `json:"member"`
	Service         string        `json:"service"`
	Trace           int           `json:"trace"`
	ArrivalSec      float64       `json:"arrival_sec"`
	WatchSec        float64       `json:"watch_sec"`
	StartupDelaySec float64       `json:"startup_delay_sec"`
	StallCount      int           `json:"stall_count"`
	StallSec        float64       `json:"stall_sec"`
	PlayedSec       float64       `json:"played_sec"`
	AvgBitrateMbps  float64       `json:"avg_bitrate_mbps"`
	Switches        int           `json:"switches"`
	TotalBytes      float64       `json:"total_bytes"`
	WastedBytes     float64       `json:"wasted_bytes"`
	Displayed       []int         `json:"displayed_tracks"`
	Buffer          []FocusSample `json:"buffer_timeline"`
}

// Report is the full population summary. Marshaling is struct-ordered
// and map-free, so the JSON bytes are a pure function of the normalized
// config — independent of worker count and steal schedule. Schema 2:
// fixed-size shard folds, fidelity counts and the focus section.
type Report struct {
	Schema   int    `json:"schema"`
	Config   Config `json:"config"`
	Cells    int    `json:"cells"`
	Sessions int64  `json:"sessions"`
	Started  int64  `json:"started"`
	// FullSessions and BackgroundSessions split the population by
	// simulation tier (FidelityFull controls the mix).
	FullSessions       int64 `json:"full_sessions"`
	BackgroundSessions int64 `json:"background_sessions"`
	// TotalBytes is what the edge links actually carried (media +
	// documents + waste), summed over cells.
	TotalBytes float64 `json:"total_bytes"`
	// FairnessJain has one sample per cell: Jain's index over the
	// cell members' achieved bitrates.
	FairnessJain Dist `json:"fairness_jain"`
	// EdgeUtilization has one sample per cell: delivered bytes over the
	// edge capacity integral. Conservation bounds it by 1.
	EdgeUtilization Dist           `json:"edge_utilization"`
	Services        []ServiceStats `json:"services"`
	// CDN summarizes the edge-cache tier; present only when the run had
	// a cache config (so cache-disabled reports keep their exact bytes).
	CDN *CDNReport `json:"cdn,omitempty"`
	// Focus lists the retained focus sessions, sorted by (cell, member).
	Focus []FocusSession `json:"focus,omitempty"`
}

// CDNBucket is one hit-ratio bucket of the QoE coupling section: the
// cells whose edge hit ratio fell in [Lo, Hi) and their mean QoE.
type CDNBucket struct {
	Lo             float64 `json:"lo"`
	Hi             float64 `json:"hi"`
	Cells          int64   `json:"cells"`
	MeanStartupSec float64 `json:"mean_startup_sec"`
	MeanStallRatio float64 `json:"mean_stall_ratio"`
}

// CDNReport is the edge-cache section of the report: fleet-wide
// request/byte counters, the per-cell hit-ratio distribution, and the
// per-cell QoE-vs-hit-ratio coupling (Pearson correlations plus
// bucketed means).
type CDNReport struct {
	EdgeHits    int64 `json:"edge_hits"`
	EdgeMisses  int64 `json:"edge_misses"`
	MetroHits   int64 `json:"metro_hits"`
	MetroMisses int64 `json:"metro_misses"`
	// Rerouted counts sessions the balancer moved to another edge node
	// after their node died mid-stream.
	Rerouted int64 `json:"rerouted_sessions"`
	// HitRatio is the fleet-wide edge hit ratio over media requests.
	HitRatio float64 `json:"hit_ratio"`
	// HitBytes were served from edge nodes; BackhaulBytes traversed the
	// shared backhaul (metro or origin); OriginBytes reached the origin.
	HitBytes      float64 `json:"hit_bytes"`
	BackhaulBytes float64 `json:"backhaul_bytes"`
	OriginBytes   float64 `json:"origin_bytes"`
	// OriginOffloadBytes is what the cache tier kept off the origin:
	// media bytes served by an edge node or a metro cache.
	OriginOffloadBytes float64 `json:"origin_offload_bytes"`
	// CellHitRatio has one sample per cell (cells with no media
	// requests count as 1).
	CellHitRatio Dist `json:"cell_hit_ratio"`
	// StartupHitCorr / StallHitCorr are the Pearson correlations of a
	// cell's edge hit ratio against its mean startup delay and mean
	// stall ratio — the per-cell QoE-vs-hit-ratio coupling.
	StartupHitCorr float64     `json:"startup_hit_corr"`
	StallHitCorr   float64     `json:"stall_hit_corr"`
	Buckets        []CDNBucket `json:"hit_ratio_buckets"`
}

func (a *fleetAgg) report(cfg Config, cells int, focus []FocusSession) *Report {
	r := &Report{
		Schema:             2,
		Config:             cfg,
		Cells:              cells,
		FullSessions:       a.full,
		BackgroundSessions: a.background,
		TotalBytes:         a.totalBytes,
		FairnessJain:       a.fairness.dist(),
		EdgeUtilization:    a.utilization.dist(),
		Services:           make([]ServiceStats, a.cols.nsvc),
		Focus:              focus,
	}
	for i := 0; i < a.cols.nsvc; i++ {
		r.Sessions += a.cols.sessions[i]
		r.Started += a.cols.started[i]
		r.Services[i] = ServiceStats{
			Service:         cfg.Services[i],
			Sessions:        a.cols.sessions[i],
			Started:         a.cols.started[i],
			BitrateMbps:     a.cols.dist(i, mBitrate),
			StallRatio:      a.cols.dist(i, mStall),
			StartupDelaySec: a.cols.dist(i, mStartup),
			SwitchesPerMin:  a.cols.dist(i, mSwitches),
		}
	}
	if a.cdnOn {
		s := a.cdnStats
		c := &CDNReport{
			EdgeHits:           s.EdgeHits,
			EdgeMisses:         s.EdgeMisses,
			MetroHits:          s.MetroHits,
			MetroMisses:        s.MetroMisses,
			Rerouted:           s.Rerouted,
			HitRatio:           s.HitRatio(),
			HitBytes:           s.HitBytes,
			BackhaulBytes:      s.MissBytes,
			OriginBytes:        s.OriginBytes,
			OriginOffloadBytes: s.HitBytes + s.MissBytes - s.OriginBytes,
			CellHitRatio:       a.cellHit.dist(),
			StartupHitCorr:     pearson(a.corrN, a.sumH, a.sumH2, a.sumQs, a.sumQs2, a.sumHQs),
			StallHitCorr:       pearson(a.corrN, a.sumH, a.sumH2, a.sumQt, a.sumQt2, a.sumHQt),
			Buckets:            make([]CDNBucket, nHitBuckets),
		}
		for i := 0; i < nHitBuckets; i++ {
			b := CDNBucket{
				Lo:    float64(i) / nHitBuckets,
				Hi:    float64(i+1) / nHitBuckets,
				Cells: a.bktCells[i],
			}
			if b.Cells > 0 {
				b.MeanStartupSec = a.bktStartup[i] / float64(b.Cells)
				b.MeanStallRatio = a.bktStall[i] / float64(b.Cells)
			}
			c.Buckets[i] = b
		}
		r.CDN = c
	}
	return r
}

// JSON renders the report deterministically (struct order, indented).
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

package adaptation

import (
	"math"
	"testing"
	"testing/quick"
)

func ctx(est, buffer float64, last int) Context {
	return Context{
		Declared:        []float64{300e3, 600e3, 1.2e6, 2.4e6},
		SegmentDuration: 4,
		SegmentCount:    100,
		NextIndex:       10,
		BufferSec:       buffer,
		EstimateBps:     est,
		LastTrack:       last,
		StartupTrack:    1,
	}
}

func TestThroughputSelection(t *testing.T) {
	a := Throughput{Factor: 0.75}
	cases := []struct {
		est  float64
		want int
	}{
		{0, 1},     // no estimate → startup track
		{300e3, 0}, // 225k budget → lowest
		{900e3, 1}, // 675k
		{1.7e6, 2}, // 1.275M
		{4e6, 3},   // 3M
		{100e6, 3}, // clamped at top
	}
	for _, c := range cases {
		if got := a.Select(ctx(c.est, 20, 1)); got != c.want {
			t.Errorf("est %v: got %d, want %d", c.est, got, c.want)
		}
	}
}

func TestThroughputDecreaseBufferProtection(t *testing.T) {
	a := Throughput{Factor: 0.75, DecreaseBufferSec: 40}
	// Ideal would be 0, but the buffer is full: hold last track.
	if got := a.Select(ctx(300e3, 60, 3)); got != 3 {
		t.Errorf("with full buffer got %d, want hold at 3", got)
	}
	// Buffer below threshold: switch down freely.
	if got := a.Select(ctx(300e3, 20, 3)); got != 0 {
		t.Errorf("with low buffer got %d, want 0", got)
	}
}

func TestThroughputMinBufferForUp(t *testing.T) {
	a := Throughput{Factor: 0.75, MinBufferForUpSec: 20}
	if got := a.Select(ctx(4e6, 5, 1)); got != 1 {
		t.Errorf("thin buffer should block up-switch, got %d", got)
	}
	if got := a.Select(ctx(4e6, 30, 1)); got != 3 {
		t.Errorf("healthy buffer should allow up-switch, got %d", got)
	}
}

func TestThroughputUseActual(t *testing.T) {
	c := ctx(1e6, 20, 1)
	// Actual sizes are half the declared rate (VBR with peak declared).
	c.SegmentSize = func(track, index int) float64 {
		return c.Declared[track] / 2 * c.SegmentDuration / 8
	}
	declaredOnly := Throughput{Factor: 0.75}
	actualAware := Throughput{Factor: 0.75, UseActual: true}
	d := declaredOnly.Select(c)
	a := actualAware.Select(c)
	if a <= d {
		t.Errorf("actual-aware (%d) should select above declared-only (%d)", a, d)
	}
}

func TestHysteresis(t *testing.T) {
	a := DefaultHysteresis()
	// Up-switch blocked below MinBufferForUp.
	if got := a.Select(ctx(4e6, 5, 1)); got != 1 {
		t.Errorf("up-switch with 5s buffer: got %d", got)
	}
	if got := a.Select(ctx(4e6, 15, 1)); got != 3 {
		t.Errorf("up-switch with 15s buffer: got %d", got)
	}
	// Down-switch blocked above MaxBufferForDown.
	if got := a.Select(ctx(300e3, 30, 3)); got != 3 {
		t.Errorf("down-switch with 30s buffer: got %d", got)
	}
	if got := a.Select(ctx(300e3, 10, 3)); got != 0 {
		t.Errorf("down-switch with 10s buffer: got %d", got)
	}
	// First selection uses the startup track.
	if got := a.Select(ctx(4e6, 0, -1)); got != 1 {
		t.Errorf("first selection: got %d", got)
	}
}

func TestBufferBased(t *testing.T) {
	a := BufferBased{Reservoir: 10, Cushion: 30}
	cases := []struct {
		buf  float64
		want int
	}{
		{0, 0}, {10, 0}, {25, 1}, {40, 3}, {100, 3},
	}
	for _, c := range cases {
		if got := a.Select(ctx(1e6, c.buf, 1)); got != c.want {
			t.Errorf("buffer %v: got %d, want %d", c.buf, got, c.want)
		}
	}
}

func TestOscillatingGreedy(t *testing.T) {
	a := OscillatingGreedy{Deadband: 0.5, UpFactor: 100} // no cap
	c := ctx(1e6, 20, 1)
	c.BufferTrend = 2
	if got := a.Select(c); got != 2 {
		t.Errorf("growing buffer should step up, got %d", got)
	}
	c.BufferTrend = -2
	if got := a.Select(c); got != 0 {
		t.Errorf("shrinking buffer should step down, got %d", got)
	}
	// The up cap binds: next track's rate exceeds UpFactor × estimate.
	capped := OscillatingGreedy{Deadband: 0.5, UpFactor: 1}
	c.BufferTrend = 2
	c.LastTrack = 2 // next declared 2.4M > 1 × 1M
	if got := capped.Select(c); got != 2 {
		t.Errorf("capped probe should hold, got %d", got)
	}
}

func TestFixed(t *testing.T) {
	if got := (Fixed{Track: 2}).Select(ctx(1e6, 0, -1)); got != 2 {
		t.Errorf("Fixed got %d", got)
	}
	if got := (Fixed{Track: 99}).Select(ctx(1e6, 0, -1)); got != 3 {
		t.Errorf("Fixed clamps to %d", got)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Estimate() != 0 {
		t.Fatal("fresh estimator should report 0")
	}
	e.Add(8e6, 1) // 8 Mbit/s
	if e.Estimate() != 8e6 {
		t.Fatalf("first sample %v", e.Estimate())
	}
	e.Add(4e6, 1)
	if got := e.Estimate(); math.Abs(got-6e6) > 1 {
		t.Fatalf("EWMA %v, want 6e6", got)
	}
	e.Add(1, 0) // ignored
	if got := e.Estimate(); math.Abs(got-6e6) > 1 {
		t.Fatalf("zero-duration sample changed estimate to %v", got)
	}
	e.Reset()
	if e.Estimate() != 0 {
		t.Fatal("reset failed")
	}
}

func TestSlidingHarmonic(t *testing.T) {
	e := NewSlidingHarmonic(2)
	e.Add(8e6, 1)
	e.Add(2e6, 1)
	if got := e.Estimate(); math.Abs(got-5e6) > 1 {
		t.Fatalf("window mean %v", got)
	}
	e.Add(2e6, 1) // evicts the 8e6 sample
	if got := e.Estimate(); math.Abs(got-2e6) > 1 {
		t.Fatalf("after eviction %v", got)
	}
	e.Reset()
	if e.Estimate() != 0 {
		t.Fatal("reset failed")
	}
}

// TestQuickThroughputMonotone: a higher estimate never selects a lower
// track, and results are always in range.
func TestQuickThroughputMonotone(t *testing.T) {
	a := Throughput{Factor: 0.75}
	f := func(e1, e2 float64) bool {
		e1, e2 = math.Abs(e1), math.Abs(e2)
		if math.IsNaN(e1) || math.IsNaN(e2) || math.IsInf(e1, 0) || math.IsInf(e2, 0) {
			return true
		}
		if e1 > e2 {
			e1, e2 = e2, e1
		}
		lo := a.Select(ctx(e1, 20, 1))
		hi := a.Select(ctx(e2, 20, 1))
		return lo >= 0 && hi <= 3 && (e1 == 0 || e2 == 0 || lo <= hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTrackRateFallbacks(t *testing.T) {
	c := ctx(1e6, 20, 1)
	// No sizes, no averages: declared.
	if got := c.trackRate(2, 1, true); got != 1.2e6 {
		t.Fatalf("declared fallback %v", got)
	}
	// Averages advertised: used when actual requested.
	c.Average = []float64{150e3, 300e3, 600e3, 1.2e6}
	if got := c.trackRate(2, 1, true); got != 600e3 {
		t.Fatalf("average fallback %v", got)
	}
	// Per-segment sizes win over averages.
	c.SegmentSize = func(track, index int) float64 { return 400e3 * c.SegmentDuration / 8 }
	if got := c.trackRate(2, 1, true); got != 400e3 {
		t.Fatalf("actual sizes %v", got)
	}
	// useActual=false always reads declared.
	if got := c.trackRate(2, 1, false); got != 1.2e6 {
		t.Fatalf("declared %v", got)
	}
	// Horizon takes the worst upcoming segment.
	c.SegmentSize = func(track, index int) float64 {
		return float64(100e3+100e3*index) * c.SegmentDuration / 8
	}
	want := float64(100e3 + 100e3*12) // NextIndex=10, horizon 3 → worst at 12
	if got := c.trackRate(2, 3, true); got != want {
		t.Fatalf("horizon worst %v, want %v", got, want)
	}
}

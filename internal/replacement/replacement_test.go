package replacement

import "testing"

func view(buffered []BufferedSegment, selected, last int, bufferSec float64) View {
	return View{
		Buffered:        buffered,
		Playhead:        0,
		BufferSec:       bufferSec,
		SelectedTrack:   selected,
		LastTrack:       last,
		NextIndex:       len(buffered),
		SegmentDuration: 4,
	}
}

func segs(tracks ...int) []BufferedSegment {
	out := make([]BufferedSegment, len(tracks))
	for i, tr := range tracks {
		out[i] = BufferedSegment{Index: i, Track: tr, Start: float64(i) * 4}
	}
	return out
}

func TestNone(t *testing.T) {
	if got := (None{}).Consider(view(segs(0, 0), 3, 0, 60)); got.Op != OpNext {
		t.Fatalf("None returned %+v", got)
	}
}

func TestContiguousTriggersOnUpswitch(t *testing.T) {
	p := ContiguousOnUpswitch{}
	// Up-switch 1→3 with low-track segments beyond the 5 s margin.
	got := p.Consider(view(segs(1, 1, 1, 1), 3, 1, 16))
	if got.Op != OpDropTail {
		t.Fatalf("expected OpDropTail, got %+v", got)
	}
	if got.Index != 2 {
		t.Fatalf("drop index %d, want 2 (first beyond 5s margin)", got.Index)
	}
}

func TestContiguousNoTriggerCases(t *testing.T) {
	p := ContiguousOnUpswitch{}
	cases := []struct {
		name string
		v    View
	}{
		{"no up-switch", view(segs(1, 1, 1), 1, 1, 30)},
		{"down-switch", view(segs(2, 2, 2), 1, 2, 30)},
		{"thin buffer", view(segs(1, 1, 1), 3, 1, 5)},
		{"first selection", view(segs(1, 1, 1), 3, -1, 30)},
		{"everything already high", view(segs(3, 3, 3), 3, 2, 30)},
	}
	for _, c := range cases {
		if got := p.Consider(c.v); got.Op != OpNext {
			t.Errorf("%s: got %+v", c.name, got)
		}
	}
}

func TestContiguousIgnoreBufferedQuality(t *testing.T) {
	p := ContiguousOnUpswitch{IgnoreBufferedQuality: true}
	// H4 replaces even segments at or above the new selection.
	got := p.Consider(view(segs(4, 4, 4, 4), 3, 2, 30))
	if got.Op != OpDropTail || got.Index != 2 {
		t.Fatalf("H4-style should drop regardless of quality: %+v", got)
	}
}

func TestContiguousSafetyMargin(t *testing.T) {
	p := ContiguousOnUpswitch{SafetyMarginSec: 9}
	got := p.Consider(view(segs(1, 1, 1, 1), 3, 1, 30))
	// Segments starting before playhead+9 are protected: first eligible
	// index is 3 (starts at 12).
	if got.Op != OpDropTail || got.Index != 3 {
		t.Fatalf("margin ignored: %+v", got)
	}
}

func TestPerSegmentBasics(t *testing.T) {
	p := PerSegment{MinBufferSec: 15, CapTrack: -1}
	got := p.Consider(view(segs(3, 1, 0, 2), 3, 3, 30))
	if got.Op != OpReplace {
		t.Fatalf("expected OpReplace, got %+v", got)
	}
	// Earliest eligible beyond the 5 s margin with track < selected.
	if got.Index != 2 {
		t.Fatalf("replace index %d, want 2", got.Index)
	}
}

func TestPerSegmentOnlyImproves(t *testing.T) {
	p := PerSegment{MinBufferSec: 15, CapTrack: -1}
	// Everything at or above the selection: nothing to do.
	if got := p.Consider(view(segs(3, 3, 4, 3), 3, 3, 30)); got.Op != OpNext {
		t.Fatalf("replaced a non-improvable segment: %+v", got)
	}
}

func TestPerSegmentSuspendsOnThinBuffer(t *testing.T) {
	p := PerSegment{MinBufferSec: 15, CapTrack: -1}
	if got := p.Consider(view(segs(0, 0, 0, 0), 3, 3, 10)); got.Op != OpNext {
		t.Fatalf("replaced with thin buffer: %+v", got)
	}
}

func TestPerSegmentCap(t *testing.T) {
	p := PerSegment{MinBufferSec: 15, CapTrack: 1}
	// Track-2 segments are above the cap; only 0/1 are eligible.
	got := p.Consider(view(segs(2, 2, 2, 1), 4, 4, 30))
	if got.Op != OpReplace || got.Index != 3 {
		t.Fatalf("cap ignored: %+v", got)
	}
	if got := p.Consider(view(segs(2, 2, 2, 2), 4, 4, 30)); got.Op != OpNext {
		t.Fatalf("replaced above cap: %+v", got)
	}
}

func TestNames(t *testing.T) {
	for _, p := range []Policy{None{}, ContiguousOnUpswitch{}, PerSegment{CapTrack: -1}, PerSegment{CapTrack: 2}} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}

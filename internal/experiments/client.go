package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/expcache"
	"repro/internal/netem"
	"repro/internal/player"
	"repro/internal/probe"
	"repro/internal/services"
	"repro/internal/textplot"
)

// Fig6 reproduces Figure 6: D1's video and audio download progress drift
// apart under low bandwidth, and stalls strike while ~100 s of video sits
// in the buffer. The paper reports average video/audio progress gaps of
// 69.9 s and 52.5 s on the two lowest-bandwidth profiles.
func Fig6(ctx context.Context) ([]*textplot.Table, []string, error) {
	d1 := services.ByName("D1")
	t := &textplot.Table{
		Title:  "Figure 6 — D1 audio/video desynchronisation (two lowest profiles)",
		Header: []string{"profile", "avg |video-audio| buffer (s)", "stalls", "stall sec", "video buffered at stalls (s)"},
	}
	var plots []string
	var base *player.Result // profile-1 session, reused for the what-if table
	for i, p := range cellular()[:2] {
		res, err := run(d1, p, 600)
		if err != nil {
			return nil, nil, err
		}
		if i == 0 {
			base = res
		}
		var diffs []float64
		var xs, vb, ab []float64
		for _, s := range res.Samples {
			if s.T >= 60 {
				diffs = append(diffs, math.Abs(s.VideoSec-s.AudioSec))
			}
			xs = append(xs, s.T)
			vb = append(vb, s.VideoSec)
			ab = append(ab, s.AudioSec)
		}
		stallSec, vidAtStall := 0.0, []float64{}
		for _, st := range res.Stalls {
			stallSec += st.Duration()
			vidAtStall = append(vidAtStall, bufAt(res, st.Start))
		}
		t.AddRow(fmt.Sprintf("%d", i+1),
			textplot.Secs(textplot.Mean(diffs)),
			fmt.Sprintf("%d", len(res.Stalls)),
			textplot.Secs(stallSec),
			textplot.Secs(textplot.Mean(vidAtStall)),
		)
		if i == 0 {
			plots = append(plots, textplot.Plot("Figure 6 — D1 buffered seconds over time (profile 1)", 72, 14,
				textplot.Series{Name: "video buffer (s)", X: xs, Y: vb},
				textplot.Series{Name: "audio buffer (s)", X: xs, Y: ab},
			))
		}
	}
	// Contrast: the same player with synced audio scheduling.
	synced := *d1
	syncedCfg := d1.Player
	syncedCfg.Audio = 0 // AudioSynced
	synced.Player = syncedCfg
	res, err := expcache.RunService(&synced, cellular()[0], 600, nil)
	if err != nil {
		return nil, nil, err
	}
	t2 := &textplot.Table{
		Title:  "Figure 6 (what-if) — D1 with synced audio/video scheduling, profile 1",
		Header: []string{"variant", "stalls", "stall sec"},
	}
	// The shipped-config baseline is the profile-1 session already
	// computed in the loop above; no second run.
	t2.AddRow("desynced (as shipped)", fmt.Sprintf("%d", len(base.Stalls)), textplot.Secs(base.TotalStall()))
	t2.AddRow("synced (best practice)", fmt.Sprintf("%d", len(res.Stalls)), textplot.Secs(res.TotalStall()))
	return []*textplot.Table{t, t2}, plots, nil
}

// Fig7 reproduces Figure 7: S2's 4 s resuming threshold leaves no
// headroom — after each download pause the buffer is nearly empty when
// fetching resumes, so transient dips stall playback. Raising the
// threshold removes the stalls.
func Fig7(ctx context.Context) ([]*textplot.Table, []string, error) {
	s2 := services.ByName("S2")
	t := &textplot.Table{
		Title:  "Figure 7 — S2 stalls vs resuming threshold (14 cellular profiles)",
		Header: []string{"variant", "profiles with stalls", "total stalls", "median stall sec", "mean stall sec"},
	}
	variants := []struct {
		name   string
		resume float64
	}{
		{"resume at 4 s (as shipped)", 4},
		{"resume at 25 s", 25},
	}
	var plots []string
	for vi, v := range variants {
		withStalls, total := 0, 0
		var secs []float64
		for pi, p := range cellular() {
			res, err := expcache.RunService(s2, p, 600, func(c *player.Config) { c.ResumeThresholdSec = v.resume })
			if err != nil {
				return nil, nil, err
			}
			if len(res.Stalls) > 0 {
				withStalls++
			}
			total += len(res.Stalls)
			secs = append(secs, res.TotalStall())
			if vi == 0 && pi == 2 {
				var xs, vb []float64
				for _, s := range res.Samples {
					if s.T > 200 {
						break
					}
					xs = append(xs, s.T)
					vb = append(vb, s.VideoSec)
				}
				plots = append(plots, textplot.Plot("Figure 7 — S2 video buffer, profile 3 (resume=4s)", 72, 12,
					textplot.Series{Name: "video buffer (s)", X: xs, Y: vb}))
			}
		}
		t.AddRow(v.name, fmt.Sprintf("%d/14", withStalls), fmt.Sprintf("%d", total),
			textplot.Secs(textplot.Median(secs)), textplot.Secs(textplot.Mean(secs)))
	}
	return []*textplot.Table{t}, plots, nil
}

// Fig8 reproduces Figure 8: at a constant 500 kbit/s, D1 keeps switching
// tracks while the other services converge.
func Fig8(ctx context.Context) ([]*textplot.Table, []string, error) {
	t := &textplot.Table{
		Title:  "Figure 8 — steady-state behaviour at constant 500 kbit/s",
		Header: []string{"service", "distinct tracks (2nd half)", "switches (2nd half)", "converged declared (Mbps)"},
	}
	var plots []string
	for _, svc := range allServices() {
		st, err := probe.SteadyState(svc, 500e3)
		if err != nil {
			return nil, nil, err
		}
		t.AddRow(svc.Name, fmt.Sprintf("%d", st.DistinctTracks), fmt.Sprintf("%d", st.Switches), textplot.Mbps(st.ConvergedDeclared))
	}
	// The oscillation trace itself.
	res, err := run(services.ByName("D1"), netem.Constant("const0.5", 500e3, 600), 600)
	if err != nil {
		return nil, nil, err
	}
	var xs, ys []float64
	for i, tr := range res.Displayed {
		if tr < 0 {
			continue
		}
		xs = append(xs, res.DisplayedWallStart[i])
		ys = append(ys, res.Declared[tr]/1e3)
	}
	plots = append(plots, textplot.Plot("Figure 8 — D1 displayed declared bitrate (kbit/s) @500 kbit/s", 72, 12,
		textplot.Series{Name: "displayed declared kbit/s", X: xs, Y: ys}))
	return []*textplot.Table{t}, plots, nil
}

// Fig9 reproduces Figure 9: the declared bitrate each service converges
// to under constant bandwidth. Aggressive services (D1, D3, S1) track
// y≈x; the conservative cluster stays below 0.75x; D2 below ~0.5–0.6x.
func Fig9(ctx context.Context) ([]*textplot.Table, []string, error) {
	bws := []float64{0.5e6, 1e6, 1.5e6, 2e6, 2.5e6, 3e6, 3.5e6, 4e6}
	names := []string{"H1", "H3", "D1", "D2", "D3", "S1"}
	t := &textplot.Table{
		Title:  "Figure 9 — converged declared bitrate (Mbps) vs constant bandwidth",
		Header: append([]string{"bandwidth (Mbps)"}, names...),
	}
	type cell struct {
		bw   float64
		name string
	}
	var cells []cell
	for _, bw := range bws {
		for _, n := range names {
			cells = append(cells, cell{bw, n})
		}
	}
	states, err := sweep(ctx, cells, func(c cell) (probe.Steady, error) {
		return probe.SteadyState(services.ByName(c.name), c.bw)
	})
	if err != nil {
		return nil, nil, err
	}
	ratio := map[string][]float64{}
	for bi, bw := range bws {
		row := []string{textplot.Mbps(bw)}
		for ni, n := range names {
			st := states[bi*len(names)+ni]
			row = append(row, textplot.Mbps(st.ConvergedDeclared))
			ratio[n] = append(ratio[n], st.ConvergedDeclared/bw)
		}
		t.AddRow(row...)
	}
	t2 := &textplot.Table{
		Title:  "Figure 9 — mean converged-declared / bandwidth ratio",
		Header: []string{"service", "mean ratio", "class"},
	}
	for _, n := range names {
		m := textplot.Mean(ratio[n])
		class := "conservative (≤0.75x)"
		if m >= 0.9 {
			class = "aggressive (≈y=x)"
		} else if m <= 0.6 {
			class = "very conservative (≤0.5-0.6x)"
		}
		t2.AddRow(n, fmt.Sprintf("%.2f", m), class)
	}
	return []*textplot.Table{t, t2}, nil, nil
}

package player

// Summary is the streaming digest of one session: the exact quantities
// qoe.FromResult extracts from a full Result, accumulated online in the
// same order and with the same arithmetic, so a lean session's summary
// is bit-identical to the post-hoc fold over the full Result the same
// run would have produced. It is a few fixed-size fields plus one
// ladder-length slice — the entire per-session footprint of the
// population hot path.
type Summary struct {
	// StartupDelay is seconds from arrival to first frame (-1 = never).
	StartupDelay float64
	// StallCount and StallSec summarise rebuffering after startup.
	StallCount int
	StallSec   float64
	// PlayedSec is total wall-clock playback time.
	PlayedSec float64
	// TimeOnTrack maps ladder index → displayed media seconds.
	TimeOnTrack []float64
	// Switches and NonConsecutive count displayed track changes.
	Switches       int
	NonConsecutive int
	// WeightedBitrateSec and PlayedMediaSec carry the displayed-bitrate
	// fold (Σ declared·duration and Σ duration); the mean displayed
	// bitrate is their ratio.
	WeightedBitrateSec float64
	PlayedMediaSec     float64
	// TotalBytes and WastedBytes mirror the Result accounting.
	TotalBytes  float64
	WastedBytes float64
	// Tainted marks a summary whose display fold double-counted because
	// the session executed seeks (the display cursor rewound); consumers
	// should fall back to the full Result. Fleet workloads never seek.
	Tainted bool
}

// AvgBitrate returns the playtime-weighted mean declared bitrate of
// displayed segments in bits/s, matching qoe.FromResult's computation.
func (s *Summary) AvgBitrate() float64 {
	if s.PlayedMediaSec > 0 {
		return s.WeightedBitrateSec / s.PlayedMediaSec
	}
	return 0
}

// Summary returns the session's online digest. It is complete once the
// session has finished; lean sessions (SetLean) have no other output.
func (s *Session) Summary() *Summary { return &s.sum }

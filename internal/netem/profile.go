// Package netem provides the network-emulation substrate of the study:
// piecewise-constant bandwidth profiles, the 14 synthetic cellular traces
// standing in for the paper's recorded ones (Figure 3), step and constant
// profiles for black-box probing, and a text codec for traces.
//
// The paper shaped a real WiFi link with the Linux tc tool while replaying
// throughput traces recorded over cellular; here a Profile plays the same
// role as the tc rate schedule, consumed by the deterministic network
// simulator in internal/simnet.
package netem

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Profile is a piecewise-constant bandwidth schedule. Sample i applies to
// the half-open interval [i*SampleDur, (i+1)*SampleDur). Beyond the last
// sample the profile repeats from the beginning, so sessions longer than a
// trace keep seeing realistic variation (the paper's traces match its 10
// minute sessions exactly; looping makes the length irrelevant).
type Profile struct {
	// Name identifies the profile, e.g. "cellular-03".
	Name string
	// SampleDur is the duration of each sample in seconds (1 for the
	// cellular traces, matching the paper's 1 s recording granularity).
	SampleDur float64
	// Samples holds the available bandwidth in bits/s per interval.
	Samples []float64
}

// Duration returns the total trace duration in seconds.
func (p *Profile) Duration() float64 { return float64(len(p.Samples)) * p.SampleDur }

// At returns the available bandwidth in bits/s at time t (t may exceed the
// trace duration; the trace loops).
func (p *Profile) At(t float64) float64 {
	if len(p.Samples) == 0 {
		return 0
	}
	i := int(math.Floor(t/p.SampleDur)) % len(p.Samples)
	if i < 0 {
		i += len(p.Samples)
	}
	return p.Samples[i]
}

// NextBoundary returns the earliest time strictly greater than t at which
// the bandwidth may change.
func (p *Profile) NextBoundary(t float64) float64 {
	if len(p.Samples) == 0 {
		return math.Inf(1)
	}
	n := math.Floor(t/p.SampleDur) + 1
	b := n * p.SampleDur
	if b <= t { // guard against floating point slop
		b = (n + 1) * p.SampleDur
	}
	return b
}

// NextChange returns the earliest time strictly greater than t at which
// the bandwidth actually differs from its value at t, or +Inf when every
// sample is equal (the trace loops, so one changeless period means a
// changeless profile). It is the event-reducing refinement of
// NextBoundary: a piecewise-constant profile has a sample boundary every
// SampleDur, but an engine that anchors flow progress only needs to wake
// when the value changes.
func (p *Profile) NextChange(t float64) float64 {
	if len(p.Samples) == 0 {
		return math.Inf(1)
	}
	v := p.At(t)
	// Walk sample boundaries with the exact NextBoundary expressions; one
	// full period with no differing sample proves the profile constant.
	n := math.Floor(t/p.SampleDur) + 1
	b := n * p.SampleDur
	if b <= t { // guard against floating point slop, as NextBoundary does
		n++
		b = n * p.SampleDur
	}
	for k := 0; k < len(p.Samples); k++ {
		// Exact comparison on purpose: samples are stored values never
		// recomputed, so "changed" means the bits differ.
		if p.At(b) != v { //vodlint:allow floateq — change detection on stored, never-recomputed sample values
			return b
		}
		n++
		b = n * p.SampleDur
	}
	return math.Inf(1)
}

// Integral returns the number of bits deliverable in [a, b] at full link
// utilisation.
func (p *Profile) Integral(a, b float64) float64 {
	if b <= a || len(p.Samples) == 0 {
		return 0
	}
	total := 0.0
	t := a
	for t < b {
		next := math.Min(p.NextBoundary(t), b)
		total += p.At(t) * (next - t)
		t = next
	}
	return total
}

// Cursor is a monotone read position into a profile. Forward simulation
// queries the bandwidth at a non-decreasing sequence of times; a Cursor
// caches the sample window containing the last query so At and
// NextBoundary are O(1) amortised instead of doing a divide, floor and
// modulo per call, and Integral does not restart its boundary walk from
// scratch. On a cache miss the cursor recomputes the window with the
// exact same floating-point expressions as Profile.At/NextBoundary, so
// for the sample durations the repository ships (SampleDur 1, where
// t/SampleDur is exact) cursor reads are bit-identical to the Profile
// methods at any t, in any order.
//
// The zero Cursor is invalid; obtain one from Profile.Cursor.
type Cursor struct {
	p        *Profile
	lo, hi   float64 // cached window: queries in [lo, hi) hit
	val      float64 // sample value over the window
	hasCache bool

	// Change-window cache for NextChange: queries in [chgLo, chgHi) all
	// see the same value, so the next value change is chgHi itself.
	chgLo, chgHi float64
	hasChg       bool
}

// Cursor returns a cursor positioned before the start of the profile.
func (p *Profile) Cursor() Cursor { return Cursor{p: p} }

// seek reseeds the cursor's window at time t using the exact same
// floating-point expressions as Profile.At and Profile.NextBoundary.
func (c *Cursor) seek(t float64) {
	p := c.p
	if len(p.Samples) == 0 {
		c.val, c.lo, c.hi = 0, t, math.Inf(1)
		c.hasCache = true
		return
	}
	c.val = p.At(t)
	n := math.Floor(t/p.SampleDur) + 1
	b := n * p.SampleDur
	if b <= t { // guard against floating point slop, as NextBoundary does
		b = (n + 1) * p.SampleDur
	}
	c.lo, c.hi = t, b
	c.hasCache = true
}

// At returns the bandwidth in bits/s at time t (the trace loops),
// equal to Profile.At(t). Repeated calls with non-decreasing t amortise
// to O(1).
func (c *Cursor) At(t float64) float64 {
	if !c.hasCache || t < c.lo || t >= c.hi {
		c.seek(t)
	}
	return c.val
}

// NextBoundary returns the earliest time strictly greater than t at
// which the bandwidth may change, equal to Profile.NextBoundary(t).
func (c *Cursor) NextBoundary(t float64) float64 {
	if !c.hasCache || t < c.lo || t >= c.hi {
		c.seek(t)
	}
	return c.hi
}

// NextChange returns the earliest time strictly greater than t at which
// the bandwidth actually differs from its value at t, equal to
// Profile.NextChange(t). The result is cached over the whole constant
// stretch, so repeated calls with non-decreasing t are O(1) amortised
// even on profiles with long runs of equal samples (a constant profile
// answers +Inf forever after one scan).
func (c *Cursor) NextChange(t float64) float64 {
	if !c.hasCache || t < c.lo || t >= c.hi {
		c.seek(t)
	}
	if c.hasChg && t >= c.chgLo && t < c.chgHi {
		return c.chgHi
	}
	b := c.p.NextChange(t)
	c.chgLo, c.chgHi = t, b
	c.hasChg = true
	return b
}

// ValueNext returns the bandwidth at t and the earliest time after t at
// which it changes, equal to (At(t), NextChange(t)) in one amortised-O(1)
// advance: the seek is shared and the change scan reuses the cached
// window instead of re-deriving the value and first boundary.
func (c *Cursor) ValueNext(t float64) (val, next float64) {
	if !c.hasCache || t < c.lo || t >= c.hi {
		c.seek(t)
	}
	if !(c.hasChg && t >= c.chgLo && t < c.chgHi) {
		c.chgLo, c.chgHi = t, c.nextChangeFrom(t)
		c.hasChg = true
	}
	return c.val, c.chgHi
}

// nextChangeFrom is Profile.NextChange with the leading At(t) replaced by
// the cursor's cached window value (the caller holds the window
// invariant c.val == p.At(t)). For unit-duration samples the boundary
// times n*1 are exact integers, so the scan walks the sample slice by
// integer index — Samples[int(n) % len] is Profile.At(n) bit for bit —
// instead of paying a divide, floor and modulo per examined boundary.
func (c *Cursor) nextChangeFrom(t float64) float64 {
	p := c.p
	if len(p.Samples) == 0 {
		return math.Inf(1)
	}
	v := c.val
	n := math.Floor(t/p.SampleDur) + 1
	b := n * p.SampleDur
	if b <= t { // guard against floating point slop, as NextBoundary does
		n++
		b = n * p.SampleDur
	}
	if p.SampleDur == 1 {
		size := len(p.Samples)
		i := int(n) % size
		if i < 0 {
			i += size
		}
		for k := 0; k < size; k++ {
			// Exact comparison on purpose: samples are stored values never
			// recomputed, so "changed" means the bits differ.
			if p.Samples[i] != v { //vodlint:allow floateq — change detection on stored, never-recomputed sample values
				return b
			}
			n++
			b = n
			i++
			if i == size {
				i = 0
			}
		}
		return math.Inf(1)
	}
	for k := 0; k < len(p.Samples); k++ {
		// Exact comparison on purpose, as above.
		if p.At(b) != v { //vodlint:allow floateq — change detection on stored, never-recomputed sample values
			return b
		}
		n++
		b = n * p.SampleDur
	}
	return math.Inf(1)
}

// Integral returns the bits deliverable in [a, b] at full utilisation,
// equal to Profile.Integral(a, b), advancing the cursor to b.
func (c *Cursor) Integral(a, b float64) float64 {
	if b <= a || len(c.p.Samples) == 0 {
		return 0
	}
	total := 0.0
	t := a
	for t < b {
		next := math.Min(c.NextBoundary(t), b)
		total += c.At(t) * (next - t)
		t = next
	}
	return total
}

// Average returns the mean bandwidth in bits/s over one trace period.
func (p *Profile) Average() float64 {
	if len(p.Samples) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range p.Samples {
		s += v
	}
	return s / float64(len(p.Samples))
}

// Min returns the minimum sample in bits/s.
func (p *Profile) Min() float64 {
	m := math.Inf(1)
	for _, v := range p.Samples {
		m = math.Min(m, v)
	}
	return m
}

// Max returns the maximum sample in bits/s.
func (p *Profile) Max() float64 {
	m := 0.0
	for _, v := range p.Samples {
		m = math.Max(m, v)
	}
	return m
}

// Slice returns the sub-profile covering [from, from+dur) seconds,
// snapped to sample boundaries.
func (p *Profile) Slice(from, dur float64) *Profile {
	start := int(math.Floor(from / p.SampleDur))
	n := int(math.Ceil(dur / p.SampleDur))
	out := &Profile{Name: fmt.Sprintf("%s[%g+%g]", p.Name, from, dur), SampleDur: p.SampleDur}
	for i := 0; i < n; i++ {
		out.Samples = append(out.Samples, p.Samples[(start+i)%len(p.Samples)])
	}
	return out
}

// Split cuts the profile into consecutive chunks of chunkDur seconds,
// discarding a final partial chunk. Figure 15 splits the 5 lowest 10-minute
// profiles into 50 one-minute profiles this way.
func (p *Profile) Split(chunkDur float64) []*Profile {
	per := int(chunkDur / p.SampleDur)
	if per <= 0 {
		return nil
	}
	var out []*Profile
	for i := 0; i+per <= len(p.Samples); i += per {
		out = append(out, &Profile{
			Name:      fmt.Sprintf("%s/%d", p.Name, len(out)+1),
			SampleDur: p.SampleDur,
			Samples:   append([]float64(nil), p.Samples[i:i+per]...),
		})
	}
	return out
}

// Constant returns a profile with fixed bandwidth bps for dur seconds.
func Constant(name string, bps, dur float64) *Profile {
	n := int(math.Ceil(dur))
	if n < 1 {
		n = 1
	}
	s := make([]float64, n)
	for i := range s {
		s[i] = bps
	}
	return &Profile{Name: name, SampleDur: 1, Samples: s}
}

// Step returns a profile that stays at before until switchAt seconds and
// then at after until dur. The paper uses such "step function" profiles to
// probe adaptation to bandwidth increases and decreases (§3.3.4).
func Step(name string, before, after, switchAt, dur float64) *Profile {
	n := int(math.Ceil(dur))
	s := make([]float64, n)
	for i := range s {
		if float64(i) < switchAt {
			s[i] = before
		} else {
			s[i] = after
		}
	}
	return &Profile{Name: name, SampleDur: 1, Samples: s}
}

// Format writes the profile in the trace text format:
//
//	# <name>
//	sampledur <seconds>
//	<bits-per-second>
//	...
func (p *Profile) Format(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", p.Name)
	fmt.Fprintf(bw, "sampledur %g\n", p.SampleDur)
	for _, v := range p.Samples {
		fmt.Fprintf(bw, "%g\n", v)
	}
	return bw.Flush()
}

// Parse reads a profile in the Format text format.
func Parse(r io.Reader) (*Profile, error) {
	sc := bufio.NewScanner(r)
	p := &Profile{SampleDur: 1}
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		switch {
		case s == "":
			continue
		case strings.HasPrefix(s, "#"):
			if p.Name == "" {
				p.Name = strings.TrimSpace(strings.TrimPrefix(s, "#"))
			}
		case strings.HasPrefix(s, "sampledur"):
			f, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(s, "sampledur")), 64)
			if err != nil || f <= 0 {
				return nil, fmt.Errorf("netem: line %d: bad sampledur %q", line, s)
			}
			p.SampleDur = f
		default:
			f, err := strconv.ParseFloat(s, 64)
			if err != nil || f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
				return nil, fmt.Errorf("netem: line %d: bad sample %q", line, s)
			}
			p.Samples = append(p.Samples, f)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(p.Samples) == 0 {
		return nil, fmt.Errorf("netem: empty trace")
	}
	return p, nil
}

// SortByAverage orders profiles by ascending mean bandwidth and renames
// them "<prefix>-01".."<prefix>-NN", mirroring the paper's "we sort them
// based on their average bandwidth and denote them Profile 1 to 14".
func SortByAverage(prefix string, ps []*Profile) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Average() < ps[j].Average() })
	for i, p := range ps {
		p.Name = fmt.Sprintf("%s-%02d", prefix, i+1)
	}
}

// ParseSpec builds a profile from a compact command-line spec:
//
//	"3"                synthetic cellular profile 3
//	"const:2.5"        constant 2.5 Mbit/s
//	"step:4,0.8,200"   4 Mbit/s, dropping to 0.8 Mbit/s at t=200 s
//
// dur bounds the generated constant/step profiles in seconds.
func ParseSpec(spec string, dur float64) (*Profile, error) {
	switch {
	case strings.HasPrefix(spec, "const:"):
		m, err := strconv.ParseFloat(strings.TrimPrefix(spec, "const:"), 64)
		if err != nil || m <= 0 {
			return nil, fmt.Errorf("netem: bad const spec %q", spec)
		}
		return Constant(spec, m*1e6, dur), nil
	case strings.HasPrefix(spec, "step:"):
		parts := strings.Split(strings.TrimPrefix(spec, "step:"), ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("netem: step spec needs before,after,switch-at: %q", spec)
		}
		var v [3]float64
		for i, s := range parts {
			f, err := strconv.ParseFloat(s, 64)
			if err != nil || f < 0 {
				return nil, fmt.Errorf("netem: bad step spec %q", spec)
			}
			v[i] = f
		}
		return Step(spec, v[0]*1e6, v[1]*1e6, v[2], dur), nil
	default:
		i, err := strconv.Atoi(spec)
		if err != nil || i < 1 || i > CellularCount {
			return nil, fmt.Errorf("netem: profile must be 1..%d, const:<Mbps> or step:<Mbps>,<Mbps>,<s>", CellularCount)
		}
		return Cellular(i), nil
	}
}

package experiments

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/expcache"
	"repro/internal/manifest"
	"repro/internal/media"
	"repro/internal/modify"
	"repro/internal/netem"
	"repro/internal/origin"
	"repro/internal/player"
	"repro/internal/probe"
	"repro/internal/services"
	"repro/internal/textplot"
)

// allServices caches the twelve service definitions.
var allServices = sync.OnceValue(services.All)

// Table1 reproduces Table 1 by black-box probing every service: the
// probed values should match the configured models, validating the
// methodology end to end.
func Table1(ctx context.Context) ([]*textplot.Table, []string, error) {
	t := &textplot.Table{
		Title: "Table 1 — design choices (black-box probed)",
		Note:  "probed via request rejection, traffic on/off analysis and constant-bandwidth runs",
		Header: []string{"service", "segdur(s)", "sep.audio", "maxTCP", "persistent",
			"startup(s)", "startup(Mbps)", "pause(s)", "resume(s)", "stable", "aggressive"},
	}
	rows, err := sweep(ctx, allServices(), func(svc *services.Service) (probe.Row, error) {
		row, err := probe.Table1(svc)
		if err != nil {
			return row, fmt.Errorf("table1: %s: %w", svc.Name, err)
		}
		return row, nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, row := range rows {
		t.AddRow(row.Service,
			fmt.Sprintf("%.0f", row.SegmentDuration),
			textplot.YN(row.SeparateAudio),
			fmt.Sprintf("%d", row.MaxConns),
			textplot.YN(row.Persistent),
			textplot.Secs(row.StartupBufferSec),
			textplot.Mbps(row.StartupBitrate),
			textplot.Secs(row.PauseSec),
			textplot.Secs(row.ResumeSec),
			textplot.YN(row.Stable),
			textplot.YN(row.Aggressive),
		)
	}
	return []*textplot.Table{t}, nil, nil
}

// Table2 reproduces Table 2 by running behavioural detectors for each of
// the nine QoE-impacting issues and listing the services they flag.
func Table2(ctx context.Context) ([]*textplot.Table, []string, error) {
	type issue struct {
		factor, problem, impact string
		detect                  func() ([]string, error)
	}
	issues := []issue{
		{"Track setting", "The bitrate of lowest track is set high", "Frequent stalls", detectHighBottom},
		{"Encoding scheme", "Adaptation does not consider actual segment bitrate", "Low video quality", detectDeclaredOnly},
		{"TCP utilization", "Audio and video downloads out of sync", "Unexpected stalls", detectDesync},
		{"TCP persistence", "Players use non-persistent TCP connections", "Low video quality", detectNonPersistent},
		{"Download control", "Downloads resume only when buffer almost empty", "Frequent stalls", detectLowResume},
		{"Startup logic", "Playback starts with only one segment downloaded", "Stall at the beginning", detectOneSegmentStartup},
		{"Adaptation logic", "Bitrate selection does not stabilize", "Extensive track switches", detectUnstable},
		{"Adaptation logic", "Players ramp down track despite high buffer", "Low video quality", detectEagerRampDown},
		{"Adaptation logic", "Replacement can fetch same or worse quality", "Wasted data, low quality", detectBadSR},
	}
	t := &textplot.Table{
		Title:  "Table 2 — identified QoE-impacting issues",
		Header: []string{"design factor", "problem", "QoE impact", "affected services"},
	}
	flagged, err := sweep(ctx, issues, func(is issue) ([]string, error) {
		svcs, err := is.detect()
		if err != nil {
			return nil, fmt.Errorf("table2: %q: %w", is.problem, err)
		}
		return svcs, nil
	})
	if err != nil {
		return nil, nil, err
	}
	for i, is := range issues {
		t.AddRow(is.factor, is.problem, is.impact, join(flagged[i]))
	}
	return []*textplot.Table{t}, nil, nil
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ", "
		}
		out += s
	}
	if out == "" {
		out = "-"
	}
	return out
}

// detectHighBottom flags services whose lowest declared bitrate exceeds
// 500 kbit/s (Apple recommends <192 kbit/s for cellular, §3.1).
func detectHighBottom() ([]string, error) {
	var out []string
	for _, svc := range allServices() {
		org, err := serviceOrigin(svc)
		if err != nil {
			return nil, err
		}
		if org.Pres.Video[0].DeclaredBitrate > 500e3 {
			out = append(out, svc.Name)
		}
	}
	return out, nil
}

// detectDeclaredOnly runs the Figure 12 manifest-variant probe on every
// stable VBR service whose protocol exposes actual sizes: if shifted and
// dropped variants select identical levels, the player reads only the
// declared bitrate.
func detectDeclaredOnly() ([]string, error) {
	var out []string
	for _, svc := range allServices() {
		v, err := svc.Video()
		if err != nil {
			return nil, err
		}
		if tr := v.HighestTrack(); tr.DeclaredBitrate < 1.5*tr.AverageBitrate() {
			continue // declared ≈ actual, nothing to ignore
		}
		if svc.Name == "D1" {
			continue // categorised under instability, as in the paper
		}
		org, err := serviceOrigin(svc)
		if err != nil {
			return nil, err
		}
		if !exposesSizes(org) {
			continue // client could not read actual sizes anyway
		}
		same, err := variantsSelectSameLevel(svc)
		if err != nil {
			return nil, err
		}
		if same {
			out = append(out, svc.Name)
		}
	}
	return out, nil
}

func exposesSizes(org *origin.Origin) bool {
	switch org.Pres.Addressing {
	case manifest.RangesInManifest, manifest.SidxRanges:
		return true
	}
	return false
}

// variantsSelectSameLevel runs the shifted and dropped manifest variants
// at a constant bandwidth and compares the selected levels (Figure 12).
func variantsSelectSameLevel(svc *services.Service) (bool, error) {
	org, err := serviceOrigin(svc)
	if err != nil {
		return false, err
	}
	shifted, err := origin.New(modify.ShiftVariants(org.Pres))
	if err != nil {
		return false, err
	}
	dropped, err := origin.New(modify.DropLowest(org.Pres))
	if err != nil {
		return false, err
	}
	adjust := func(c *player.Config) {
		if c.StartupTrack >= len(org.Pres.Video)-1 {
			c.StartupTrack = len(org.Pres.Video) - 2
		}
	}
	for _, bw := range []float64{1.4e6, 2.6e6} {
		p := netem.Constant("const", bw, 600)
		r1, err := expcache.Run(svc.Player, shifted, p, 300, adjust)
		if err != nil {
			return false, err
		}
		r2, err := expcache.Run(svc.Player, dropped, p, 300, adjust)
		if err != nil {
			return false, err
		}
		if steadyLevel(r1) != steadyLevel(r2) {
			return false, nil
		}
	}
	return true, nil
}

// steadyLevel returns the modal displayed level in the second half.
func steadyLevel(res *player.Result) int {
	counts := map[int]int{}
	last := -1
	for i, tr := range res.Displayed {
		if tr >= 0 {
			last = i
		}
	}
	for i := last / 2; i <= last; i++ {
		if tr := res.Displayed[i]; tr >= 0 {
			counts[tr]++
		}
	}
	best, n := -1, 0
	for tr, c := range counts {
		if c > n {
			best, n = tr, c
		}
	}
	return best
}

// detectDesync flags services whose video and audio buffers drift more
// than 15 s apart on average on the two lowest-bandwidth profiles (§3.2,
// Figure 6); synced services stay within a couple of seconds.
func detectDesync() ([]string, error) {
	var out []string
	for _, svc := range allServices() {
		if !svc.Media.SeparateAudio {
			continue
		}
		worst := 0.0
		for _, p := range cellular()[:2] {
			res, err := run(svc, p, 600)
			if err != nil {
				return nil, err
			}
			var diffs []float64
			for _, s := range res.Samples {
				if s.T < 60 {
					continue
				}
				diffs = append(diffs, math.Abs(s.VideoSec-s.AudioSec))
			}
			worst = math.Max(worst, textplot.Mean(diffs))
		}
		if worst > 15 {
			out = append(out, svc.Name)
		}
	}
	return out, nil
}

// detectNonPersistent reads the connection behaviour of the model (in
// live traffic this falls out of handshake counts).
func detectNonPersistent() ([]string, error) {
	var out []string
	for _, svc := range allServices() {
		if !svc.Player.Persistent {
			out = append(out, svc.Name)
		}
	}
	return out, nil
}

// detectLowResume flags services whose probed resuming threshold is
// below 5 s (§3.3.2, Figure 7).
func detectLowResume() ([]string, error) {
	var out []string
	for _, svc := range allServices() {
		_, resume, err := probe.Thresholds(svc)
		if err != nil {
			return nil, err
		}
		if resume < 5 {
			out = append(out, svc.Name)
		}
	}
	return out, nil
}

// detectOneSegmentStartup flags services that begin playback after a
// single video segment (§4.3).
func detectOneSegmentStartup() ([]string, error) {
	var out []string
	for _, svc := range allServices() {
		org, err := serviceOrigin(svc)
		if err != nil {
			return nil, err
		}
		p := netem.Constant("probe10", 10e6, 120)
		// Count the video segments buffered when playback starts on a
		// fast link.
		res, err := expcache.Run(svc.Player, org, p, 60, nil)
		if err != nil {
			return nil, err
		}
		if res.StartupDelay < 0 {
			continue
		}
		n := 0
		for _, d := range res.Downloads {
			if d.Type == media.TypeVideo && d.End > 0 && d.End <= res.StartupDelay+1e-9 {
				n++
			}
		}
		if n <= 1 {
			out = append(out, svc.Name)
		}
	}
	return out, nil
}

// detectUnstable flags services that keep switching under constant
// bandwidth (§3.3.3, Figure 8).
func detectUnstable() ([]string, error) {
	var out []string
	for _, svc := range allServices() {
		st, err := probe.SteadyState(svc, 500e3)
		if err != nil {
			return nil, err
		}
		if st.Switches > 3 {
			out = append(out, svc.Name)
		}
	}
	return out, nil
}

// detectEagerRampDown runs the §3.3.4 step-down probe on the services
// with large pause thresholds (>60 s): bandwidth drops 4→0.8 Mbit/s at
// t=200 s; a service that fetches a much lower track while holding >50 s
// of buffer ramps down eagerly.
func detectEagerRampDown() ([]string, error) {
	var out []string
	for _, svc := range allServices() {
		if svc.Player.PauseThresholdSec <= 60 {
			continue
		}
		org, err := serviceOrigin(svc)
		if err != nil {
			return nil, err
		}
		p := netem.Step("step-down", 4e6, 0.8e6, 200, 600)
		res, err := expcache.Run(svc.Player, org, p, 360, nil)
		if err != nil {
			return nil, err
		}
		maxBefore := -1
		for _, d := range res.Downloads {
			if d.Type != media.TypeVideo || d.End == 0 {
				continue
			}
			if d.End > 100 && d.End < 200 && d.Track > maxBefore {
				maxBefore = d.Track
			}
		}
		for _, d := range res.Downloads {
			if d.Type != media.TypeVideo || d.End == 0 || d.End < 200 || d.End > 330 {
				continue
			}
			if maxBefore > 1 && d.Track <= maxBefore-2 && bufAt(res, d.Start) > 45 {
				out = append(out, svc.Name)
				break
			}
		}
	}
	return out, nil
}

func bufAt(res *player.Result, t float64) float64 {
	best, dist := 0.0, math.Inf(1)
	for _, s := range res.Samples {
		if d := math.Abs(s.T - t); d < dist {
			dist, best = d, s.VideoSec
		}
	}
	return best
}

// detectBadSR flags services whose replacement downloads sometimes carry
// the same or lower quality than the segment they replace (§4.1.1).
func detectBadSR() ([]string, error) {
	var out []string
	for _, svc := range allServices() {
		found := false
		for _, p := range cellular()[2:6] {
			stats, err := srStats(svc, p)
			if err != nil {
				return nil, err
			}
			if stats.lower+stats.equal > 0 {
				found = true
				break
			}
		}
		if found {
			out = append(out, svc.Name)
		}
	}
	return out, nil
}

package simnet

import (
	"math"
	"testing"

	"repro/internal/netem"
)

// These tests pin the upstream-role AccessLink semantics the cdn tier
// builds on: StartVia's extra first-byte latency and the even-split
// backhaul cap that cache misses share — across all three engines,
// since the upstream fold runs inside each engine's recompute.

// TestStartViaExtraLatency: a cache-miss transfer pays the extra
// latency before its first byte, nothing else changes.
func TestStartViaExtraLatency(t *testing.T) {
	n := New(cfgNoRamp(), netem.Constant("c", 8e6, 100))
	c := n.Dial()
	tr := c.StartVia(1e6, 0.08, nil, nil)
	n.Step(100)
	// handshake(0.1) + request(0.1 + 0.08) + 1 s payload.
	if math.Abs(tr.Completed-1.28) > 1e-6 {
		t.Fatalf("completed at %v, want 1.28", tr.Completed)
	}
}

// TestBackhaulEvenSplit: two transfers on separate connections, each
// with ample edge and access capacity, sharing one 8 Mbit/s upstream
// link: the backhaul cap halves their rates.
func TestBackhaulEvenSplit(t *testing.T) {
	for _, engine := range []Engine{EngineScan, EngineVTime, EngineCell} {
		cfg := cfgNoRamp()
		cfg.Engine = engine
		n := New(cfg, netem.Constant("edge", 100e6, 100))
		backhaul := n.NewAccessLink(netem.Constant("backhaul", 8e6, 100))
		a := n.Dial().StartVia(1e6, 0, backhaul, nil)
		b := n.Dial().StartVia(1e6, 0, backhaul, nil)
		var done int
		for done < 2 {
			done += len(n.Step(100))
		}
		// 0.2 s latency + 1e6 bytes at 0.5 MB/s each = 2.2 s.
		if math.Abs(a.Completed-2.2) > 1e-6 || math.Abs(b.Completed-2.2) > 1e-6 {
			t.Fatalf("engine %v: completions %.4f/%.4f, want 2.2 (even backhaul split)", engine, a.Completed, b.Completed)
		}
	}
}

// TestBackhaulDoesNotCapHits: a transfer without an upstream link
// (edge hit) is unaffected by a congested backhaul carrying others.
func TestBackhaulDoesNotCapHits(t *testing.T) {
	cfg := cfgNoRamp()
	cfg.Engine = EngineCell
	n := New(cfg, netem.Constant("edge", 100e6, 100))
	backhaul := n.NewAccessLink(netem.Constant("backhaul", 1e6, 100))
	miss := n.Dial().StartVia(1e6, 0, backhaul, nil)
	hit := n.Dial().Start(1e6, nil)
	var done int
	for done < 2 {
		done += len(n.Step(100))
	}
	// The hit shares only the 100 Mbit/s edge with the miss; the miss is
	// pinned to 1 Mbit/s backhaul. Edge share never binds for the hit:
	// 0.2 + 8e6/(100e6-1e6... ) — conservatively, the hit must finish in
	// well under a second of payload time while the miss takes ~8 s.
	if hit.Completed > 0.5 {
		t.Fatalf("edge hit throttled by the backhaul: completed at %.3f", hit.Completed)
	}
	if miss.Completed < 8 {
		t.Fatalf("miss ignored the backhaul cap: completed at %.3f", miss.Completed)
	}
}

// TestBackhaulConservation: bytes delivered through a shared backhaul
// never exceed its capacity integral.
func TestBackhaulConservation(t *testing.T) {
	cfg := cfgNoRamp()
	cfg.Engine = EngineCell
	prof := netem.Constant("backhaul", 4e6, 100)
	n := New(cfg, netem.Constant("edge", 100e6, 100))
	backhaul := n.NewAccessLink(prof)
	var trs []*Transfer
	for i := 0; i < 6; i++ {
		trs = append(trs, n.Dial().StartVia(5e5, 0, backhaul, nil))
	}
	var done int
	for done < len(trs) {
		done += len(n.Step(200))
	}
	last := 0.0
	for _, tr := range trs {
		if tr.Completed > last {
			last = tr.Completed
		}
	}
	delivered := 6 * 5e5
	capBytes := prof.Integral(0, last) / 8
	if delivered > capBytes*1.001 {
		t.Fatalf("delivered %.0f B through a backhaul that carried at most %.0f B", float64(delivered), capBytes)
	}
}

package flow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/flow"
)

const src = `package p

var global []byte

//vodlint:hotpath
func Root() {
	work := func(n int) { Leaf(n) }
	work(1)
}

func Leaf(n int) {}

func Unreached() {}

func Keep(b []byte) { global = b }

func Relay(b []byte) { Keep(b) }

func Drop(b []byte) { _ = len(b) }

func mk() []byte { return nil }

func Esc() []byte {
	x := mk()
	global = x
	return x
}

func NoEsc() int {
	x := mk()
	return len(x)
}
`

func build(t *testing.T) (*flow.Graph, *lint.Pass) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	pass := &lint.Pass{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, TypesInfo: info}
	return flow.New(pass), pass
}

func fn(t *testing.T, pass *lint.Pass, name string) *types.Func {
	t.Helper()
	obj, ok := pass.Pkg.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("no function %s", name)
	}
	return obj
}

func TestAnnotatedAndReachability(t *testing.T) {
	g, pass := build(t)
	roots := g.Annotated("hotpath")
	if len(roots) != 1 || roots[0].Name() != "Root" {
		t.Fatalf("Annotated(hotpath) = %v, want [Root]", roots)
	}
	reach := g.Reachable(roots)
	leaf := g.NodeOf(fn(t, pass, "Leaf"))
	if leaf == nil {
		t.Fatal("Leaf has no node")
	}
	if _, ok := reach[leaf]; !ok {
		t.Fatal("Leaf not reachable from Root through the closure variable")
	}
	if unreached := g.NodeOf(fn(t, pass, "Unreached")); unreached == nil {
		t.Fatal("Unreached has no node")
	} else if _, ok := reach[unreached]; ok {
		t.Fatal("Unreached should not be reachable from Root")
	}
	trace := g.Trace(reach, leaf)
	if !strings.Contains(trace, "Root") || !strings.Contains(trace, "Leaf") {
		t.Fatalf("Trace(Leaf) = %q, want Root ... Leaf provenance", trace)
	}
}

func TestRetains(t *testing.T) {
	g, pass := build(t)
	cases := []struct {
		name string
		want bool
	}{
		{"Keep", true},  // stores its arg in a package variable
		{"Relay", true}, // hands its arg to Keep, which retains it
		{"Drop", false}, // only reads the length
	}
	for _, c := range cases {
		node := g.NodeOf(fn(t, pass, c.name))
		if node == nil {
			t.Fatalf("no node for %s", c.name)
		}
		if got := g.Retains(node, 0); got != c.want {
			t.Errorf("Retains(%s, 0) = %v, want %v", c.name, got, c.want)
		}
	}
}

// seedCalls collects every call to mk inside node as escape seeds.
func seedCalls(g *flow.Graph, node *flow.Node) []ast.Expr {
	var seeds []ast.Expr
	flow.WalkOwn(node, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mk" {
				seeds = append(seeds, call)
			}
		}
		return true
	})
	return seeds
}

func TestEscapes(t *testing.T) {
	g, pass := build(t)
	esc := g.NodeOf(fn(t, pass, "Esc"))
	sinks := g.Escapes(esc, seedCalls(g, esc), flow.EscapeOpts{})
	var whats []string
	for _, s := range sinks {
		whats = append(whats, s.What)
	}
	joined := strings.Join(whats, "; ")
	if !strings.Contains(joined, "global") {
		t.Errorf("Esc sinks = %q, want a package-variable store on global", joined)
	}
	if !strings.Contains(joined, "returned") {
		t.Errorf("Esc sinks = %q, want a return sink", joined)
	}

	noEsc := g.NodeOf(fn(t, pass, "NoEsc"))
	if sinks := g.Escapes(noEsc, seedCalls(g, noEsc), flow.EscapeOpts{}); len(sinks) != 0 {
		t.Errorf("NoEsc sinks = %v, want none (len() does not retain)", sinks)
	}
}

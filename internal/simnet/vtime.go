package simnet

import (
	"math"
	"sort"
)

// Virtual-service-time engine (GPS / fair-queuing style).
//
// The scan engine pays O(F) per event on a busy link: it scans every
// flowing transfer for the next slow-start doubling, reruns the
// water-filling, and applies rate·dt to every flow. This engine makes
// each event O(log F) by tracking a cumulative equal-share service
// counter V(t) — "bytes served per uncapped flow so far" — whose slope
// s = (C − R)/U re-anchors only when the capacity C, the capped-rate
// sum R, or the uncapped count U changes:
//
//   - An uncapped flow attached at anchor a with r bytes remaining
//     finishes exactly when V reaches a + r, a key that stays valid
//     across every slope change. Uncapped completions therefore pop
//     from a min-heap keyed by finish-V with no per-flow updates.
//   - A capped flow serves at its fixed cap, so its completion is a
//     real wall-clock time in a sibling heap; it re-anchors only when
//     its own cap changes.
//   - Pending first bytes, slow-start doublings and access-link profile
//     boundaries each live in further heaps.
//
// Per-flow progress is never written per event. It is materialized
// lazily — on completion, removal, cap change, engine exit, or observer
// read (Transfer.Remaining/Rate, Network.Delivered) — from the flow's
// (anchor, remaining-at-anchor) pair. Network.Delivered stays O(1) via
// aggregate anchors: capped flows have collectively delivered
// R·now − Σ capᵢ·anchorᵢ, uncapped flows U·V − Σ anchorᵢ.
//
// The max-min partition (who is capped?) is maintained incrementally:
// only the largest capped cap and the smallest uncapped cap can violate
// it, so a rebalance repeatedly compares the two heap tops against the
// share s. Every move strictly increases s, so each flow moves at most
// once per direction and the loop terminates.
//
// The engine is equivalent to the scan engine up to float accumulation
// order (uncapped shares are s exactly instead of the water-filling's
// sequential remainder divisions); the differential fuzz target pins
// the equivalence with tolerance-bounded completion times and exact
// per-flow byte conservation.

// Transfer.vClass values.
const (
	vNone uint8 = iota // not attached to the vtime engine
	vUnc               // uncapped: serves at the shared slope
	vCapd              // capped: serves at its own vCap
)

// vtimeState carries the engine's anchors, aggregates and event heaps.
type vtimeState struct {
	vNow  float64 // cumulative equal-share service, bytes per uncapped flow
	slope float64 // dV/dt in bytes/s (0 when U == 0 or the link is saturated by caps)
	C     float64 // edge capacity at the last refresh, bytes/s

	uncN  int     // uncapped flow count U
	uncAV float64 // Σ vAnchor over uncapped flows
	R     float64 // Σ vCap over capped flows
	capRT float64 // Σ vCap·vAnchor over capped flows

	uncFin fheap[Transfer]   // uncapped flows keyed by finish-V
	uncCap fheap[Transfer]   // uncapped flows keyed by effective cap (min on top)
	capFin fheap[Transfer]   // capped flows keyed by real finish time
	capCap fheap[Transfer]   // capped flows keyed by negated cap (max on top)
	grow   fheap[Conn]       // slow-start doublings of conns with an attached flow
	bound  fheap[AccessLink] // next profile boundary per active access link
}

func newVtimeState() *vtimeState {
	v := &vtimeState{} //vodlint:allow hotalloc — one-time lazy engine construction per Network
	fin := func(tr *Transfer, i int) { tr.hFin = i }
	cp := func(tr *Transfer, i int) { tr.hCap = i }
	v.uncFin.set = fin
	v.capFin.set = fin
	v.uncCap.set = cp
	v.capCap.set = cp
	v.grow.set = func(c *Conn, i int) { c.hGrow = i }
	v.bound.set = func(l *AccessLink, i int) { l.hBound = i }
	return v
}

// active is the number of flows attached to the engine.
func (v *vtimeState) active() int { return v.uncN + v.capFin.Len() }

// deliveredAt folds the un-materialized service of every attached flow
// into the materialized total in O(1). Exact at quiescence: the dust
// resets in removeUnc/removeCap zero the aggregates whenever a class
// empties, so an idle network reports exactly Network.delivered.
func (v *vtimeState) deliveredAt(n *Network) float64 {
	return n.delivered + (v.R*n.now - v.capRT) + (float64(v.uncN)*v.vNow - v.uncAV)
}

// addUnc attaches tr as an uncapped flow anchored at the current V.
// tr.vRem must hold its remaining bytes.
func (v *vtimeState) addUnc(tr *Transfer, cap float64) {
	tr.vClass = vUnc
	tr.vAnchor = v.vNow
	v.uncN++
	v.uncAV += tr.vAnchor
	v.uncFin.Push(tr, tr.vAnchor+tr.vRem)
	v.uncCap.Push(tr, cap)
}

// removeUnc detaches tr from the uncapped class, materializing its
// service since the anchor into Network.delivered and tr.vRem.
func (v *vtimeState) removeUnc(n *Network, tr *Transfer) {
	d := v.vNow - tr.vAnchor
	n.delivered += d
	tr.vRem -= d
	v.uncN--
	v.uncAV -= tr.vAnchor
	v.uncFin.Remove(tr.hFin)
	v.uncCap.Remove(tr.hCap)
	tr.vClass = vNone
	if v.uncN == 0 {
		v.uncAV = 0 // shed float dust so deliveredAt is exact at quiescence
	}
}

// addCap attaches tr as a capped flow at rate cap (finite, by
// construction: rebalance and updateCap route infinite caps to addUnc).
func (v *vtimeState) addCap(n *Network, tr *Transfer, cap float64) {
	tr.vClass = vCapd
	tr.vCap = cap
	tr.vAnchor = n.now
	v.R += cap
	v.capRT += cap * tr.vAnchor
	v.capFin.Push(tr, capFinishT(n.now, tr.vRem, cap))
	v.capCap.Push(tr, -cap)
}

// removeCap is addCap's inverse, materializing service at the cap.
func (v *vtimeState) removeCap(n *Network, tr *Transfer) {
	d := tr.vCap * (n.now - tr.vAnchor)
	n.delivered += d
	tr.vRem -= d
	v.R -= tr.vCap
	v.capRT -= tr.vCap * tr.vAnchor
	v.capFin.Remove(tr.hFin)
	v.capCap.Remove(tr.hCap)
	tr.vClass = vNone
	if v.capFin.Len() == 0 {
		v.R, v.capRT = 0, 0 // shed float dust, as in removeUnc
	}
}

// capFinishT is a capped flow's real completion time. rem/0 and a
// non-positive remainder need explicit handling so the heap key is
// never NaN: a zero-rate flow never finishes, an already-drained one
// finishes now.
func capFinishT(now, rem, cap float64) float64 {
	if rem <= 0 {
		return now
	}
	if cap <= 0 {
		return math.Inf(1)
	}
	return now + rem/cap
}

// updateCap applies a changed effective cap to an attached flow. An
// uncapped flow only re-keys its rebalance heap — its service rate is
// the shared slope either way — while a capped flow materializes at the
// old rate and re-anchors at the new one.
func (v *vtimeState) updateCap(n *Network, tr *Transfer) {
	cap := tr.Conn.effCap()
	switch tr.vClass {
	case vUnc:
		if cap != v.uncCap.key[tr.hCap] { //vodlint:allow floateq — skip no-op re-keys of an unchanged cap
			v.uncCap.Fix(tr.hCap, cap)
		}
	case vCapd:
		if cap == tr.vCap { //vodlint:allow floateq — skip no-op re-anchors of an unchanged cap
			return
		}
		v.removeCap(n, tr)
		if math.IsInf(cap, 1) {
			v.addUnc(tr, cap)
		} else {
			v.addCap(n, tr, cap)
		}
	}
}

// updateLinkCaps re-keys every flow on l — access-role and
// upstream-role members alike — after its even split changed
// (membership or budget change).
func (v *vtimeState) updateLinkCaps(n *Network, l *AccessLink) {
	for _, m := range l.members {
		v.updateCap(n, m)
	}
	for _, m := range l.upMembers {
		v.updateCap(n, m)
	}
}

// rebalance restores the max-min partition after caps, capacity or
// membership changed, then re-derives the slope. Only the heap tops can
// violate the partition: the smallest uncapped cap is the first to fall
// below the share s, the largest capped cap the first to rise above it.
// Every demote removes a cap < s from the uncapped pool and every
// promote returns a cap > s to it, so s strictly increases with each
// move, no flow moves twice in the same direction, and the loop
// terminates.
func (v *vtimeState) rebalance(n *Network) {
	for {
		if v.uncN == 0 {
			if v.R <= v.C || v.capFin.Len() == 0 {
				break
			}
			// All-capped but infeasible (Σ caps > C): the largest cap
			// cannot be served at its cap and must share instead.
			tr := v.capCap.Min()
			v.removeCap(n, tr)
			v.addUnc(tr, tr.Conn.effCap())
			continue
		}
		s := (v.C - v.R) / float64(v.uncN)
		if k := v.uncCap.MinKey(); k < s {
			tr := v.uncCap.Min()
			v.removeUnc(n, tr)
			v.addCap(n, tr, k)
			continue
		}
		if v.capFin.Len() > 0 && -v.capCap.MinKey() > s {
			tr := v.capCap.Min()
			v.removeCap(n, tr)
			v.addUnc(tr, tr.Conn.effCap())
			continue
		}
		break
	}
	if v.uncN > 0 {
		s := (v.C - v.R) / float64(v.uncN)
		if s < 0 {
			s = 0
		}
		v.slope = s
	} else {
		v.slope = 0
	}
}

// vAttach moves a pending transfer into the live flow set as the clock
// reaches its first byte (the vtime counterpart of promote →
// insertFlowing).
func (n *Network) vAttach(tr *Transfer) {
	v := n.v
	tr.vRem = tr.remaining
	n.linkAttach(tr)
	al, ul := tr.Conn.access, tr.upstream
	if al != nil && al.flows == 1 {
		// Newly active link: refresh its budget and schedule boundaries.
		al.rateBps = al.cursor.At(n.now)
		v.bound.Push(al, al.cursor.NextBoundary(n.now))
	}
	if ul != nil && ul != al && ul.flows == 1 {
		ul.rateBps = ul.cursor.At(n.now)
		v.bound.Push(ul, ul.cursor.NextBoundary(n.now))
	}
	v.addUnc(tr, tr.Conn.effCap())
	if c := tr.Conn; c.InSlowStart() && c.hGrow < 0 {
		v.grow.Push(c, c.nextGrow)
	}
	if al != nil && al.flows > 1 {
		// The even split changed for every sibling on the link.
		v.updateLinkCaps(n, al)
	}
	if ul != nil && ul != al && ul.flows > 1 {
		v.updateLinkCaps(n, ul)
	}
}

// vDetach removes a no-longer-serving flow's side effects: its conn's
// doubling events, its access-link membership, and its siblings' caps.
// The caller has already detached the flow from its class.
func (n *Network) vDetach(tr *Transfer) {
	v := n.v
	if c := tr.Conn; c.hGrow >= 0 {
		v.grow.Remove(c.hGrow)
	}
	al, ul := tr.Conn.access, tr.upstream
	n.linkDetach(tr)
	if al != nil {
		if al.flows == 0 {
			if al.hBound >= 0 {
				v.bound.Remove(al.hBound)
			}
		} else {
			v.updateLinkCaps(n, al)
		}
	}
	if ul != nil && ul != al {
		if ul.flows == 0 {
			if ul.hBound >= 0 {
				v.bound.Remove(ul.hBound)
			}
		} else {
			v.updateLinkCaps(n, ul)
		}
	}
}

// abandon drops an attached in-flight transfer (connection close),
// materializing its progress into tr.remaining.
func (v *vtimeState) abandon(n *Network, tr *Transfer) {
	switch tr.vClass {
	case vUnc:
		v.removeUnc(n, tr)
	case vCapd:
		v.removeCap(n, tr)
	default:
		return
	}
	tr.remaining = tr.vRem
	if tr.remaining < 0 {
		tr.remaining = 0
	}
	n.vDetach(tr)
	v.rebalance(n)
}

// enterVTime hands the live flows from the scan engine to the
// virtual-time engine. V restarts at 0; every flowing transfer attaches
// uncapped at its current remaining and the first rebalance derives the
// true partition.
func (n *Network) enterVTime() {
	if n.v == nil {
		n.v = newVtimeState()
	}
	v := n.v
	v.vNow = 0
	v.C = n.cursor.At(n.now) / 8
	for _, tr := range n.flowing {
		tr.pos = -1
		tr.vRem = tr.remaining
		v.addUnc(tr, tr.Conn.effCap())
		if c := tr.Conn; c.InSlowStart() && c.hGrow < 0 {
			v.grow.Push(c, c.nextGrow)
		}
	}
	for i := range n.flowing {
		n.flowing[i] = nil
	}
	n.flowing = n.flowing[:0]
	for _, l := range n.links {
		l.rateBps = l.cursor.At(n.now)
		v.bound.Push(l, l.cursor.NextBoundary(n.now))
	}
	v.rebalance(n)
	n.vmode = true
}

// exitVTime hands the flows back: every attached flow materializes its
// remaining bytes and the scan engine's flowing set is rebuilt in dial
// order.
func (n *Network) exitVTime() {
	v := n.v
	for v.uncFin.Len() > 0 {
		tr := v.uncFin.Min()
		v.removeUnc(n, tr)
		tr.remaining = tr.vRem
		n.flowing = append(n.flowing, tr)
	}
	for v.capFin.Len() > 0 {
		tr := v.capFin.Min()
		v.removeCap(n, tr)
		tr.remaining = tr.vRem
		n.flowing = append(n.flowing, tr)
	}
	v.grow.clear()
	v.bound.clear()
	sort.Slice(n.flowing, func(i, j int) bool { return n.flowing[i].Conn.seq < n.flowing[j].Conn.seq }) //vodlint:allow hotalloc — engine switch: runs once per transition, not per event
	for i, tr := range n.flowing {
		tr.pos = i
		if tr.remaining < 0 {
			tr.remaining = 0
		}
	}
	n.allocDirty = true
	n.vmode = false
}

// vStepOnce advances the virtual-time engine by one event and returns
// any completions. Event processing mirrors scanStepOnce: promote
// pending arrivals, find the next event, advance real and virtual time
// together, then apply completions, doublings and boundary re-anchors
// due at the new time, and rebalance once.
//
//vodlint:hotpath — vtime-engine event: O(log F) per event at high fan-in
func (n *Network) vStepOnce(until float64) []*Transfer {
	const epsBytes = 1e-6
	v := n.v
	dirty := false

	// Promote pending first bytes due now.
	for n.pendHeap.Len() > 0 && n.pendHeap.MinKey() <= n.now {
		n.vAttach(n.pendHeap.Pop())
		dirty = true
	}
	// Refresh edge capacity at the current time (cursor reads are O(1)
	// amortised; the exact comparison is the scan engine's memo idiom).
	if c := n.cursor.At(n.now) / 8; c != v.C { //vodlint:allow floateq — memo invalidation on a stored, never-recomputed sample value
		v.C = c
		dirty = true
	}
	if dirty {
		v.rebalance(n)
		dirty = false
	}

	// Next event: the deadline, a pending first byte, a slow-start
	// doubling, an edge or access profile boundary, a capped
	// completion, or — through the current slope — the nearest uncapped
	// completion in V.
	next := until
	if k := n.pendHeap.MinKey(); k < next {
		next = k
	}
	if k := v.grow.MinKey(); k < next {
		next = k
	}
	if b := n.cursor.NextBoundary(n.now); b < next {
		next = b
	}
	if k := v.bound.MinKey(); k < next {
		next = k
	}
	if k := v.capFin.MinKey(); k < next {
		next = k
	}
	uncT := math.Inf(1)
	if v.uncN > 0 && v.slope > 0 {
		uncT = n.now + (v.uncFin.MinKey()-v.vNow)/v.slope
	}
	if uncT < next {
		next = uncT
	}
	if next <= n.now {
		// Degenerate interval (floating point); nudge forward.
		next = math.Nextafter(n.now, math.Inf(1))
	}

	// Advance real and virtual time together.
	dt := next - n.now
	v.vNow += v.slope * dt
	n.now = next
	if next >= uncT {
		// The event is an uncapped completion: land V exactly on the
		// finish key despite the divide-multiply round trip above.
		if k := v.uncFin.MinKey(); v.vNow < k {
			v.vNow = k
		}
	}

	// Completions due at the new time.
	completed := n.completed[:0]
	for v.uncFin.Len() > 0 && v.uncFin.MinKey() <= v.vNow+epsBytes {
		tr := v.uncFin.Min()
		v.removeUnc(n, tr)
		completed = append(completed, tr)
	}
	for v.capFin.Len() > 0 {
		tr := v.capFin.Min()
		k := v.capFin.MinKey()
		if !(k <= n.now || tr.vCap*(k-n.now) <= epsBytes) {
			break
		}
		v.removeCap(n, tr)
		completed = append(completed, tr)
	}
	for _, tr := range completed {
		// The residual vRem is within epsBytes of zero (either sign):
		// folding it into delivered lands the flow's total exactly on
		// Size, keeping byte conservation exact.
		n.delivered += tr.vRem
		tr.vRem = 0
		tr.remaining = 0
		tr.Done = true
		tr.Completed = n.now
		tr.Conn.cur = nil
		tr.Conn.lastActive = n.now
		n.vDetach(tr)
		dirty = true
	}

	// Slow-start doublings due now.
	for v.grow.Len() > 0 && v.grow.MinKey() <= n.now {
		c := v.grow.Min()
		c.capBps *= 2
		c.nextGrow += n.cfg.RTT
		if c.capBps >= n.steadyCap {
			c.capBps = math.Inf(1)
			v.grow.Remove(c.hGrow)
		} else {
			v.grow.Fix(c.hGrow, c.nextGrow)
		}
		if tr := c.cur; tr != nil && tr.vClass != vNone {
			v.updateCap(n, tr)
		}
		dirty = true
	}

	// Access-link profile boundaries due now.
	for v.bound.Len() > 0 && v.bound.MinKey() <= n.now {
		l := v.bound.Min()
		v.bound.Fix(l.hBound, l.cursor.NextBoundary(n.now))
		if r := l.cursor.At(n.now); r != l.rateBps { //vodlint:allow floateq — memo invalidation on a stored, never-recomputed sample value
			l.rateBps = r
			v.updateLinkCaps(n, l)
			dirty = true
		}
	}

	if dirty {
		v.rebalance(n)
	}

	// Deterministic dial-order batches, mirroring the scan engine's
	// flowing-set order.
	if len(completed) > 1 {
		for i := 1; i < len(completed); i++ {
			for j := i; j > 0 && completed[j].Conn.seq < completed[j-1].Conn.seq; j-- {
				completed[j], completed[j-1] = completed[j-1], completed[j]
			}
		}
	}
	n.completed = completed
	return completed
}

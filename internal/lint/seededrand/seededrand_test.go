package seededrand

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestSeededrand(t *testing.T) {
	linttest.Run(t, Analyzer, "a")
}

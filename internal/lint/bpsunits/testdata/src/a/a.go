package a

// The classic 8x bug family: additive arithmetic and comparisons that
// mix bits-per-second quantities with byte quantities.
func bad(estimateBps float64, segmentBytes float64, kbps float64, bodyBytes int64) {
	_ = estimateBps + segmentBytes  // want `mixes bits-per-second and byte quantities`
	_ = estimateBps - segmentBytes  // want `mixes bits-per-second and byte quantities`
	if estimateBps < segmentBytes { // want `mixes bits-per-second and byte quantities`
		return
	}
	if kbps >= float64(bodyBytes) { // want `mixes bits-per-second and byte quantities`
		return
	}
	var limitBps float64
	limitBps = segmentBytes // want `mixes bits-per-second and byte quantities`
	_ = limitBps
}

func good(estimateBps, segmentBytes, durationSec float64, totalBytes int64) {
	// Explicit by-8 conversions are how the families legitimately meet.
	_ = estimateBps + segmentBytes*8
	_ = estimateBps/8 - segmentBytes
	if estimateBps > 8*segmentBytes {
		return
	}
	// Multiplication and division change units by construction.
	throughputBps := float64(totalBytes) * 8 / durationSec
	_ = throughputBps
	bytesPerSec := estimateBps / 8
	_ = bytesPerSec
	// Same-family arithmetic is unconstrained.
	_ = segmentBytes + float64(totalBytes)
	_ = estimateBps + throughputBps
	// Unclassified names never pair into a finding.
	var tokens float64
	tokens -= segmentBytes
	_ = tokens
}

func allowed(rateBps, bodyBytes float64) float64 {
	return rateBps + bodyBytes //vodlint:allow bpsunits — deliberate mixed-unit fixture
}
